// Package shard partitions a column into contiguous row-range shards, each
// backed by its own static Theorem 2/3 index on its own simulated disk, and
// serves range queries by fanning out across the shards and merging the
// compressed per-shard answers with row-id offsetting.
//
// This mirrors how the Aggarwal–Vitter I/O model treats parallelism: the
// shards' disks are independent block devices, so S shards can serve a query
// in max-per-shard rather than sum I/O time, and the aggregate query counters
// report exactly the same total block transfers as one device would (plus
// per-shard tree overhead). Shard builds and queries run through one bounded
// worker pool. Each per-shard query runs the fused streaming pipeline
// (decode and merge in one pass over the bits read, cbitmap.MergeStreams);
// batches run each shard through core's shared-scan batch planner, so
// overlapping ranges read every coalesced cover-chunk extent once per shard.
// The per-shard answers feed the same merge via cbitmap.UnionAll with
// row-id offsetting: its contiguous-shard fast path re-encodes only each
// shard's head gap and copies the rest of the compressed answer verbatim.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cbitmap"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/iomodel"
	"repro/internal/workload"
)

// Options configures a sharded index.
type Options struct {
	// Shards is the number of contiguous row-range shards (default 1). It is
	// clamped so every shard holds at least one row.
	Shards int
	// Workers bounds concurrent shard builds and queries (default
	// runtime.GOMAXPROCS(0)).
	Workers int
	// BlockBits, MemBits and CacheBlocks configure each shard's Disk;
	// CacheBlocks > 0 enables the per-shard LRU block cache.
	BlockBits   int
	MemBits     int
	CacheBlocks int
	// Branching, Stride and Seed configure each shard's index as in
	// core.ApproxOptions. All shards share the Seed.
	Branching int
	Stride    int
	Seed      int64
}

// shard is one contiguous row range [start, start+ax.Len()) of the column.
type shard struct {
	ax    *core.Approx
	disk  *iomodel.Disk
	start int64 // global row id of the shard's local row 0
}

// Index is a sharded static secondary index over a column of n rows.
type Index struct {
	shards  []*shard
	n       int64
	sigma   int
	workers int
}

// Build constructs a sharded index over data (values in [0,sigma)),
// building the shards in parallel through a pool of opts.Workers workers.
func Build(data []uint32, sigma int, opts Options) (*Index, error) {
	if sigma < 1 {
		return nil, fmt.Errorf("shard: alphabet size %d", sigma)
	}
	if opts.CacheBlocks < 0 {
		// Validate here: iomodel.NewDisk panics on a negative capacity, and
		// it is called inside a build worker goroutine where a panic would
		// kill the process instead of surfacing as Build's error.
		return nil, fmt.Errorf("shard: CacheBlocks %d must not be negative", opts.CacheBlocks)
	}
	s := opts.Shards
	if s < 1 {
		s = 1
	}
	if int64(s) > int64(len(data)) {
		s = len(data) // at least one row per shard
		if s < 1 {
			s = 1
		}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	sx := &Index{
		shards:  make([]*shard, s),
		n:       int64(len(data)),
		sigma:   sigma,
		workers: workers,
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	errs := make([]error, s)
	for i := 0; i < s; i++ {
		// Balanced contiguous partition: shard i covers [i·n/s, (i+1)·n/s).
		start := int64(i) * sx.n / int64(s)
		end := int64(i+1) * sx.n / int64(s)
		wg.Add(1)
		go func(i int, start, end int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			d := iomodel.NewDisk(iomodel.Config{
				BlockBits:   opts.BlockBits,
				MemBits:     opts.MemBits,
				CacheBlocks: opts.CacheBlocks,
			})
			ax, err := core.BuildApprox(d, workload.Column{X: data[start:end], Sigma: sigma}, core.ApproxOptions{
				OptimalOptions: core.OptimalOptions{Branching: opts.Branching, Stride: opts.Stride},
				Seed:           opts.Seed,
			})
			if err != nil {
				errs[i] = err
				return
			}
			sx.shards[i] = &shard{ax: ax, disk: d, start: start}
		}(i, start, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sx, nil
}

// Len returns the number of rows indexed.
func (sx *Index) Len() int64 { return sx.n }

// Sigma returns the alphabet size.
func (sx *Index) Sigma() int { return sx.sigma }

// Shards returns the shard count.
func (sx *Index) Shards() int { return len(sx.shards) }

// SizeBits returns the total space usage across all shards.
func (sx *Index) SizeBits() int64 {
	var bits int64
	for _, sh := range sx.shards {
		bits += sh.ax.SizeBits()
	}
	return bits
}

// DeviceStats sums the cumulative device counters of every shard's disk.
func (sx *Index) DeviceStats() iomodel.StatsSnapshot {
	var out iomodel.StatsSnapshot
	for _, sh := range sx.shards {
		st := sh.disk.Stats()
		out.BlockReads += st.BlockReads
		out.BlockWrites += st.BlockWrites
		out.Sessions += st.Sessions
		out.CacheHits += st.CacheHits
		out.CacheMisses += st.CacheMisses
		out.SharedSaved += st.SharedSaved
	}
	return out
}

// PerShardStats returns each shard disk's cumulative counters, in row
// order. The maximum per-shard read count is the query workload's critical
// path on independent devices.
func (sx *Index) PerShardStats() []iomodel.StatsSnapshot {
	out := make([]iomodel.StatsSnapshot, len(sx.shards))
	for i, sh := range sx.shards {
		out[i] = sh.disk.Stats()
	}
	return out
}

// ResetDeviceStats zeroes every shard disk's cumulative counters.
func (sx *Index) ResetDeviceStats() {
	for _, sh := range sx.shards {
		sh.disk.ResetStats()
	}
}

// Query answers I[lo;hi] by fanning the range out to every shard and merging
// the compressed per-shard answers, rebased by each shard's row offset. The
// returned stats sum the per-shard I/O costs (total block transfers; on S
// independent devices the critical path is roughly 1/S of it). A single
// range has nothing to share, so it runs the per-shard fused pipeline
// directly rather than the batch planner.
func (sx *Index) Query(r index.Range) (*cbitmap.Bitmap, index.QueryStats, error) {
	var stats index.QueryStats
	if err := r.Valid(sx.sigma); err != nil {
		return nil, stats, err
	}
	if len(sx.shards) == 1 {
		// One shard covers every row, so its local answer is already the
		// global one (row offset 0) — no fan-out, no merge.
		return sx.shards[0].ax.Query(r)
	}
	parts := make([]cbitmap.Shifted, len(sx.shards))
	sts := make([]index.QueryStats, len(sx.shards))
	errs := make([]error, len(sx.shards))
	var failed atomic.Bool
	sx.runTasks(len(sx.shards), &failed, func(i int) error {
		bm, st, err := sx.shards[i].ax.Query(r)
		if err != nil {
			return err
		}
		parts[i] = cbitmap.Shifted{Bm: bm, Off: sx.shards[i].start}
		sts[i] = st
		return nil
	}, errs)
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	for _, st := range sts {
		stats.Add(st)
	}
	out, err := cbitmap.UnionAll(sx.n, parts...)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// shardBatchQuery is the per-shard batch entry point: the shard runs the
// whole deduplicated batch through core's shared-scan planner, so ranges
// that overlap coalesce their cover-chunk reads inside every shard. It is a
// variable so tests can inject failing shards.
var shardBatchQuery = func(sh *shard, rs []index.Range) ([]*cbitmap.Bitmap, index.QueryStats, error) {
	return sh.ax.QueryBatch(rs)
}

// QueryBatch answers a batch of ranges. Duplicate ranges are deduplicated
// (they share one answer and pay I/O once). Each shard answers the whole
// deduplicated batch in one shared-scan planner pass — overlapping ranges
// read each coalesced cover-chunk extent once per shard, not once per range —
// and the per-range cross-shard merges then run through the same bounded
// worker pool. The i-th result corresponds to rs[i]; the returned stats
// aggregate the whole batch at batch level (each shard's distinct blocks are
// charged once, with the reads avoided by sharing in Stats.SharedSaved).
//
// A failing shard short-circuits the batch: tasks not yet started are
// drained without running once any task records an error, and the first
// error in shard order is returned.
func (sx *Index) QueryBatch(rs []index.Range) ([]*cbitmap.Bitmap, index.QueryStats, error) {
	var stats index.QueryStats
	uniq := make(map[index.Range]int, len(rs))
	var order []index.Range
	for _, r := range rs {
		if err := r.Valid(sx.sigma); err != nil {
			return nil, stats, err
		}
		if _, ok := uniq[r]; !ok {
			uniq[r] = len(order)
			order = append(order, r)
		}
	}
	out := make([]*cbitmap.Bitmap, len(rs))
	if len(order) == 0 {
		return out, stats, nil
	}
	if len(order) == 1 {
		// One distinct range: the direct single-query fan-out, no planner.
		bm, st, err := sx.Query(order[0])
		if err != nil {
			return nil, st, err
		}
		for i := range out {
			out[i] = bm
		}
		return out, st, nil
	}

	// Phase 1 — per-shard shared scans, one task per shard through the pool.
	perShard := make([][]*cbitmap.Bitmap, len(sx.shards))
	shardStats := make([]index.QueryStats, len(sx.shards))
	errs := make([]error, len(sx.shards))
	var failed atomic.Bool
	sx.runTasks(len(sx.shards), &failed, func(i int) error {
		bms, st, err := shardBatchQuery(sx.shards[i], order)
		if err != nil {
			return err
		}
		perShard[i], shardStats[i] = bms, st
		return nil
	}, errs)
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	for _, st := range shardStats {
		stats.Add(st)
	}

	// Phase 2 — per-range cross-shard merges through the same pool. UnionAll
	// feeds the shard answers through the streaming k-way merge with head-gap
	// offsetting; shard answers are disjoint and ordered, so the merge
	// degenerates to verbatim concatenation.
	merged := make([]*cbitmap.Bitmap, len(order))
	if len(sx.shards) == 1 {
		// One shard covers every row: its local answers are already global
		// (row offset 0), so the merge pass would only re-copy them.
		copy(merged, perShard[0])
		for i, r := range rs {
			out[i] = merged[uniq[r]]
		}
		return out, stats, nil
	}
	mergeErrs := make([]error, len(order))
	failed.Store(false)
	sx.runTasks(len(order), &failed, func(qi int) error {
		parts := make([]cbitmap.Shifted, len(sx.shards))
		for hi, sh := range sx.shards {
			parts[hi] = cbitmap.Shifted{Bm: perShard[hi][qi], Off: sh.start}
		}
		var err error
		merged[qi], err = cbitmap.UnionAll(sx.n, parts...)
		return err
	}, mergeErrs)
	for _, err := range mergeErrs {
		if err != nil {
			return nil, stats, err
		}
	}
	for i, r := range rs {
		out[i] = merged[uniq[r]]
	}
	return out, stats, nil
}

// runTasks executes run(0..n-1) through min(workers, n) pool goroutines
// pulling task indices from a shared counter, recording per-task errors in
// errs. Once any task fails, tasks that have not started yet are drained
// without running — the batch is doomed, so the remaining work would be
// wasted I/O and the error should surface promptly.
func (sx *Index) runTasks(n int, failed *atomic.Bool, run func(int) error, errs []error) {
	workers := sx.workers
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue // short-circuit: a sibling task already failed
				}
				if err := run(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
}
