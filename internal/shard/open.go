package shard

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/iomodel"
)

// Part is one shard viewed from outside the package: its index, device,
// optional fault wrapper, and the global row range it covers. Parts carries
// a built index out for serialisation; Assemble carries reopened shards back
// in.
type Part struct {
	Ax    *core.Approx
	Disk  iomodel.Device
	Fault *iomodel.FaultDisk // non-nil iff the shard has a fault schedule
	Start int64              // global row id of the shard's local row 0
	End   int64              // one past the shard's last global row
}

// Parts returns the index's shards in shard order, for serialisation.
func (x *Index) Parts() []Part {
	out := make([]Part, len(x.shards))
	for i, sh := range x.shards {
		out[i] = Part{Ax: sh.ax, Disk: sh.disk, Fault: sh.fd, Start: sh.start, End: sh.end}
	}
	return out
}

// Assemble constructs a sharded index from already-built (typically
// reopened) shards. The parts must tile rows [0,n) contiguously in order,
// and each part's index must cover exactly its row range over the shared
// alphabet. workers < 1 selects GOMAXPROCS.
func Assemble(parts []Part, n int64, sigma, workers int) (*Index, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no shards to assemble")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	x := &Index{n: n, sigma: sigma, workers: workers}
	var expect int64
	for i, p := range parts {
		if p.Ax == nil || p.Disk == nil {
			return nil, fmt.Errorf("shard: part %d missing index or device", i)
		}
		if p.Start != expect {
			return nil, fmt.Errorf("shard: part %d starts at row %d, want %d", i, p.Start, expect)
		}
		if p.End <= p.Start || p.End > n {
			return nil, fmt.Errorf("shard: part %d covers [%d,%d) outside [0,%d)", i, p.Start, p.End, n)
		}
		if got := p.Ax.Len(); got != p.End-p.Start {
			return nil, fmt.Errorf("shard: part %d index holds %d rows, range holds %d", i, got, p.End-p.Start)
		}
		if got := p.Ax.Sigma(); got != sigma {
			return nil, fmt.Errorf("shard: part %d alphabet %d, want %d", i, got, sigma)
		}
		x.shards = append(x.shards, &shard{ax: p.Ax, disk: p.Disk, fd: p.Fault, start: p.Start, end: p.End})
		expect = p.End
	}
	if expect != n {
		return nil, fmt.Errorf("shard: parts end at row %d, want %d", expect, n)
	}
	return x, nil
}
