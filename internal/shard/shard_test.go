package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/cbitmap"
	"repro/internal/index"
)

func testColumn(n, sigma int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]uint32, n)
	for i := range x {
		x[i] = uint32(rng.Intn(sigma))
	}
	return x
}

// TestQueryBatchShortCircuit injects a failing shard and checks that the
// batch aborts promptly: with one worker, tasks queued behind the failure
// must be drained without running, and the injected error is what surfaces.
func TestQueryBatchShortCircuit(t *testing.T) {
	x := testColumn(4000, 64, 51)
	sx, err := Build(x, 64, Options{Shards: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected shard failure")
	var calls atomic.Int32
	orig := shardBatchQuery
	defer func() { shardBatchQuery = orig }()
	shardBatchQuery = func(ctx context.Context, sh *shard, rs []index.Range) ([]*cbitmap.Bitmap, index.QueryStats, error) {
		calls.Add(1)
		return nil, index.QueryStats{}, injected
	}
	_, _, err = sx.QueryBatch([]index.Range{{Lo: 0, Hi: 7}, {Lo: 3, Hi: 12}})
	if !errors.Is(err, injected) {
		t.Fatalf("batch error = %v, want the injected failure", err)
	}
	// One worker serialises the 8 shard tasks; the first fails, so every
	// later task must see the failure flag and drain without running.
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d shard tasks ran after the failure, want short-circuit after 1", got)
	}
}

// TestQueryBatchPartialFailure fails only one shard and checks the error
// still surfaces (no lost error when healthy shards complete first) and that
// a subsequent batch on the same index succeeds — the failure leaves no
// poisoned state behind.
func TestQueryBatchPartialFailure(t *testing.T) {
	x := testColumn(4000, 64, 52)
	sx, err := Build(x, 64, Options{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	orig := shardBatchQuery
	defer func() { shardBatchQuery = orig }()
	fail := true
	shardBatchQuery = func(ctx context.Context, sh *shard, rs []index.Range) ([]*cbitmap.Bitmap, index.QueryStats, error) {
		if fail && sh.start == 0 {
			return nil, index.QueryStats{}, fmt.Errorf("shard at row 0 is down")
		}
		return orig(ctx, sh, rs)
	}
	if _, _, err := sx.QueryBatch([]index.Range{{Lo: 0, Hi: 7}, {Lo: 8, Hi: 15}}); err == nil {
		t.Fatal("batch with a failing shard returned no error")
	}
	fail = false
	out, _, err := sx.QueryBatch([]index.Range{{Lo: 0, Hi: 7}})
	if err != nil {
		t.Fatalf("batch after recovery: %v", err)
	}
	if out[0] == nil {
		t.Fatal("batch after recovery returned no answer")
	}
}
