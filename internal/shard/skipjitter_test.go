package shard

// Tests for the serving layer's two shard-level hooks: the deterministic
// seeded retry jitter (concurrent per-shard retries must not convoy, yet a
// fixed seed must reproduce the exact schedule) and ExecOptions.SkipShards
// (circuit-broken shards answer immediately with a structured ShardError
// instead of burning retry budget on a device known to be down).

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"repro/internal/index"
)

// TestRetryDelayJitterPinned pins the jittered schedule: Delay is a pure
// function of (policy, token, attempt), so these golden values must never
// change — fault-injection tests pick retry seeds assuming the schedule is
// frozen.
func TestRetryDelayJitterPinned(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 42}
	golden := map[[2]uint64]time.Duration{} // (token, attempt) -> delay
	for token := uint64(0); token < 3; token++ {
		for attempt := 1; attempt <= 4; attempt++ {
			golden[[2]uint64{token, uint64(attempt)}] = p.Delay(attempt, token)
		}
	}
	want := map[[2]uint64]time.Duration{
		{0, 1}: 892166, {0, 2}: 1365402, {0, 3}: 2367706, {0, 4}: 5619873,
		{1, 1}: 519744, {1, 2}: 1535690, {1, 3}: 3223876, {1, 4}: 4038085,
		{2, 1}: 587501, {2, 2}: 1563018, {2, 3}: 3597076, {2, 4}: 5842590,
	}
	for k, g := range golden {
		if w, ok := want[k]; ok && g != w {
			t.Errorf("Delay(attempt=%d, token=%d) = %d, pinned %d: the retry schedule moved", k[1], k[0], g, w)
		}
	}
	if t.Failed() {
		t.Logf("actual schedule: %v", golden)
	}
}

// TestRetryDelayJitterProperties checks the schedule's invariants: delays
// land in [base/2, base), the exponential cap holds, tokens decorrelate,
// zero backoff stays zero, and the draw is deterministic.
func TestRetryDelayJitterProperties(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond, JitterSeed: 7}
	base := func(attempt int) time.Duration {
		d := p.Backoff
		for i := 1; i < attempt && d < p.MaxBackoff; i++ {
			d *= 2
		}
		if d > p.MaxBackoff {
			d = p.MaxBackoff
		}
		return d
	}
	for token := uint64(0); token < 16; token++ {
		for attempt := 1; attempt <= 8; attempt++ {
			d := p.Delay(attempt, token)
			b := base(attempt)
			if d < b/2 || d >= b {
				t.Fatalf("Delay(%d, %d) = %v outside [%v, %v)", attempt, token, d, b/2, b)
			}
			if d2 := p.Delay(attempt, token); d2 != d {
				t.Fatalf("Delay(%d, %d) not deterministic: %v then %v", attempt, token, d, d2)
			}
		}
	}
	// Tokens must decorrelate: across 16 tokens the first-attempt delays
	// cannot all collide (that is the convoy the jitter exists to break).
	seen := map[time.Duration]bool{}
	for token := uint64(0); token < 16; token++ {
		seen[p.Delay(1, token)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("16 tokens drew only %d distinct first delays: jitter does not decorrelate", len(seen))
	}
	if d := (RetryPolicy{MaxAttempts: 3, JitterSeed: 9}).Delay(1, 0); d != 0 {
		t.Fatalf("zero Backoff jittered to %v, want 0", d)
	}
}

// TestSkipShards checks the circuit-breaker hook: a skipped shard is never
// queried, reports ErrShardSkipped with zero attempts, and the degraded
// answer is exactly the unskipped shards' rows.
func TestSkipShards(t *testing.T) {
	data := testColumn(8000, 64, 53)
	sx, err := Build(data, 64, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := index.Range{Lo: 3, Hi: 40}
	full, _, err := sx.Query(r)
	if err != nil {
		t.Fatal(err)
	}
	const skipped = 1
	lo, hi := sx.shards[skipped].start, sx.shards[skipped].end
	var wantRows []int64
	for _, row := range full.Positions() {
		if row < lo || row >= hi {
			wantRows = append(wantRows, row)
		}
	}
	skip := []bool{false, true, false, false}

	readsBefore := sx.DeviceStats().BlockReads
	bm, _, report, err := sx.QueryExec(context.Background(), r, ExecOptions{AllowPartial: true, SkipShards: skip})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(bm.Positions(), wantRows) {
		t.Fatalf("degraded answer has %d rows, want %d (unskipped shards only)", bm.Card(), len(wantRows))
	}
	if len(report) != 1 || report[0].Shard != skipped {
		t.Fatalf("report = %+v, want exactly shard %d", report, skipped)
	}
	if !errors.Is(report[0].Err, ErrShardSkipped) {
		t.Fatalf("report error = %v, want ErrShardSkipped", report[0].Err)
	}
	if report[0].Attempts != 0 {
		t.Fatalf("skipped shard made %d attempts, want 0", report[0].Attempts)
	}
	if report[0].RowStart != lo || report[0].RowEnd != hi {
		t.Fatalf("report rows [%d,%d), want [%d,%d)", report[0].RowStart, report[0].RowEnd, lo, hi)
	}

	// The skipped shard's device must not have been touched. Per-shard reads
	// are visible through PerShardStats.
	per := sx.PerShardStats()
	_ = readsBefore
	// Run the same skip query again and diff the skipped shard's counter.
	before := per[skipped].BlockReads
	if _, _, _, err := sx.QueryExec(context.Background(), r, ExecOptions{AllowPartial: true, SkipShards: skip}); err != nil {
		t.Fatal(err)
	}
	if after := sx.PerShardStats()[skipped].BlockReads; after != before {
		t.Fatalf("skipped shard read %d blocks", after-before)
	}

	// The batch path degrades identically.
	rs := []index.Range{{Lo: 3, Hi: 40}, {Lo: 10, Hi: 20}, {Lo: 3, Hi: 40}}
	bms, _, breport, err := sx.QueryBatchExec(context.Background(), rs, ExecOptions{AllowPartial: true, SkipShards: skip})
	if err != nil {
		t.Fatal(err)
	}
	if len(breport) != 1 || !errors.Is(breport[0].Err, ErrShardSkipped) {
		t.Fatalf("batch report = %+v, want one ErrShardSkipped", breport)
	}
	if !slices.Equal(bms[0].Positions(), wantRows) || !slices.Equal(bms[2].Positions(), wantRows) {
		t.Fatal("batch degraded answers differ from the single-query degraded answer")
	}

	// Guard rails: skips without AllowPartial, and skipping every shard.
	if _, _, _, err := sx.QueryExec(context.Background(), r, ExecOptions{SkipShards: skip}); err == nil {
		t.Fatal("SkipShards without AllowPartial did not error")
	}
	all := []bool{true, true, true, true}
	if _, _, _, err := sx.QueryExec(context.Background(), r, ExecOptions{AllowPartial: true, SkipShards: all}); !errors.Is(err, ErrShardSkipped) {
		t.Fatalf("all-skipped error = %v, want ErrShardSkipped", err)
	}
	if _, _, _, err := sx.QueryBatchExec(context.Background(), rs, ExecOptions{AllowPartial: true, SkipShards: all}); !errors.Is(err, ErrShardSkipped) {
		t.Fatalf("all-skipped batch error = %v, want ErrShardSkipped", err)
	}
}
