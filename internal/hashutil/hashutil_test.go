package hashutil

import (
	"math/rand"
	"testing"
)

func TestMultiplyShiftRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{1, 4, 16, 32} {
		h := NewMultiplyShift(rng, bits)
		for i := 0; i < 1000; i++ {
			v := h.Hash(rng.Uint64())
			if v >= 1<<uint(bits) {
				t.Fatalf("bits=%d: hash %d out of range", bits, v)
			}
		}
	}
	h := NewMultiplyShift(rng, 0)
	if h.Hash(12345) != 0 {
		t.Fatal("0-bit hash must be 0")
	}
}

func TestMultiplyShiftCollisionRate(t *testing.T) {
	// Empirical universality: collision rate of random pairs should be
	// close to 2^-outBits (we allow 4x slack).
	rng := rand.New(rand.NewSource(2))
	const bits = 12
	trials := 200000
	collisions := 0
	for i := 0; i < 20; i++ {
		h := NewMultiplyShift(rng, bits)
		for j := 0; j < trials/20; j++ {
			x, y := rng.Uint64(), rng.Uint64()
			if x != y && h.Hash(x) == h.Hash(y) {
				collisions++
			}
		}
	}
	rate := float64(collisions) / float64(trials)
	if rate > 4.0/(1<<bits) {
		t.Fatalf("collision rate %v too high", rate)
	}
}

func TestSplitXORHashRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewSplitXOR(rng, 8)
	if h.Range() != 256 {
		t.Fatalf("range = %d", h.Range())
	}
	for i := uint64(0); i < 10000; i++ {
		if h.Hash(i) >= 256 {
			t.Fatalf("hash(%d) out of range", i)
		}
	}
}

func TestSplitXORPreimageExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewSplitXOR(rng, 6)
	n := int64(5000) // not a multiple of 64: exercises the partial block
	// Build the ground-truth preimages by direct evaluation.
	truth := make(map[uint64][]uint64)
	for i := uint64(0); i < uint64(n); i++ {
		s := h.Hash(i)
		truth[s] = append(truth[s], i)
	}
	for s := uint64(0); s < uint64(h.Range()); s++ {
		it := h.Preimage(s, n)
		var got []uint64
		for v, ok := it.Next(); ok; v, ok = it.Next() {
			got = append(got, v)
		}
		want := truth[s]
		if len(got) != len(want) {
			t.Fatalf("s=%d: %d preimages, want %d", s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("s=%d: preimage[%d] = %d, want %d", s, i, got[i], want[i])
			}
		}
		if c := h.PreimageCount(s, n); c != int64(len(want)) {
			t.Fatalf("s=%d: PreimageCount = %d, want %d", s, c, len(want))
		}
	}
}

func TestSplitXORPreimageIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewSplitXOR(rng, 10)
	it := h.Preimage(77, 1<<20)
	prev := int64(-1)
	count := 0
	for v, ok := it.Next(); ok; v, ok = it.Next() {
		if int64(v) <= prev {
			t.Fatalf("preimage not increasing: %d after %d", v, prev)
		}
		if h.Hash(v) != 77 {
			t.Fatalf("preimage %d hashes to %d", v, h.Hash(v))
		}
		prev = int64(v)
		count++
	}
	if count != 1<<10 {
		t.Fatalf("count = %d, want %d", count, 1<<10)
	}
}

func TestSplitXORUniversality(t *testing.T) {
	// Pr[h(x) = h(y)] ≈ 1/Range for x != y.
	rng := rand.New(rand.NewSource(6))
	const low = 10
	trials := 100000
	collisions := 0
	for rep := 0; rep < 20; rep++ {
		h := NewSplitXOR(rng, low)
		for j := 0; j < trials/20; j++ {
			x := rng.Uint64() % (1 << 30)
			y := rng.Uint64() % (1 << 30)
			if x != y && h.Hash(x) == h.Hash(y) {
				collisions++
			}
		}
	}
	rate := float64(collisions) / float64(trials)
	if rate > 4.0/(1<<low) {
		t.Fatalf("collision rate %v too high", rate)
	}
}

func TestDeterminism(t *testing.T) {
	h1 := NewSplitXOR(rand.New(rand.NewSource(42)), 8)
	h2 := NewSplitXOR(rand.New(rand.NewSource(42)), 8)
	for i := uint64(0); i < 1000; i++ {
		if h1.Hash(i) != h2.Hash(i) {
			t.Fatal("same seed, different hashes")
		}
	}
}
