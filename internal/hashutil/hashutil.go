// Package hashutil provides the universal hash families used by the paper's
// approximate secondary index (§3): a multiply–add–shift universal family,
// and the paper's split-XOR construction h_j(i₁,i₂) = g_j(i₁) ⊕ i₂ whose
// preimages are computable without I/O — the property §3 relies on to
// intersect approximate results and to filter false positives lazily.
package hashutil

import (
	"fmt"
	"math/rand"
)

// MultiplyShift is a multiply–add–shift hash mapping 64-bit keys to outBits
// bits: h(x) = (a·x + b) >> (64 − outBits) with a odd. The family is
// 2-universal up to a constant factor, which is all §3's analysis needs.
type MultiplyShift struct {
	A, B    uint64
	OutBits int
}

// NewMultiplyShift draws a function with the given output width from rng.
func NewMultiplyShift(rng *rand.Rand, outBits int) MultiplyShift {
	if outBits < 0 || outBits > 63 {
		panic(fmt.Sprintf("hashutil: outBits %d out of range", outBits))
	}
	return MultiplyShift{A: rng.Uint64() | 1, B: rng.Uint64(), OutBits: outBits}
}

// Hash maps x to [0, 2^OutBits).
func (h MultiplyShift) Hash(x uint64) uint64 {
	if h.OutBits == 0 {
		return 0
	}
	return (h.A*x + h.B) >> uint(64-h.OutBits)
}

// SplitXOR is the paper's §3 family. A key i ∈ [0,n) is split as
// (i₁, i₂) where i₂ is the low LowBits bits; the hash value is
// g(i₁) ⊕ i₂, mapping to [0, 2^LowBits). Universality of g implies
// universality of the composite, and the preimage of any hash value s is
// the explicitly enumerable set {(i₁, s ⊕ g(i₁)) | i₁ = 0, 1, 2, …}.
type SplitXOR struct {
	G       MultiplyShift // maps i₁ to LowBits bits
	LowBits int
}

// NewSplitXOR draws a split-XOR function with the given output width.
func NewSplitXOR(rng *rand.Rand, lowBits int) SplitXOR {
	if lowBits < 1 || lowBits > 62 {
		panic(fmt.Sprintf("hashutil: lowBits %d out of range", lowBits))
	}
	return SplitXOR{G: NewMultiplyShift(rng, lowBits), LowBits: lowBits}
}

// Range returns the size of the hash codomain, 2^LowBits.
func (h SplitXOR) Range() int64 { return 1 << uint(h.LowBits) }

// Hash maps i to [0, Range()).
func (h SplitXOR) Hash(i uint64) uint64 {
	i1 := i >> uint(h.LowBits)
	i2 := i & (1<<uint(h.LowBits) - 1)
	return h.G.Hash(i1) ^ i2
}

// PreimageIter enumerates, in increasing order, the keys i ∈ [0,n) with
// Hash(i) = s. There is exactly one such key per i₁ block.
type PreimageIter struct {
	h  SplitXOR
	s  uint64
	n  uint64
	i1 uint64
}

// Preimage returns an iterator over h⁻¹(s) ∩ [0,n).
func (h SplitXOR) Preimage(s uint64, n int64) *PreimageIter {
	return &PreimageIter{h: h, s: s, n: uint64(n)}
}

// Next returns the next preimage key, or ok=false when exhausted.
func (it *PreimageIter) Next() (uint64, bool) {
	for {
		base := it.i1 << uint(it.h.LowBits)
		if base >= it.n {
			return 0, false
		}
		i2 := it.s ^ it.h.G.Hash(it.i1)
		it.i1++
		i := base | i2
		if i < it.n {
			return i, true
		}
		// The unique candidate in this block falls outside [0,n); skip.
	}
}

// PreimageCount returns |h⁻¹(s) ∩ [0,n)| without enumerating: one candidate
// per complete i₁ block, plus possibly one in the final partial block.
func (h SplitXOR) PreimageCount(s uint64, n int64) int64 {
	blocks := uint64(n) >> uint(h.LowBits)
	cnt := int64(blocks)
	// Final partial block.
	base := blocks << uint(h.LowBits)
	if base < uint64(n) {
		i2 := s ^ h.G.Hash(blocks)
		if base|i2 < uint64(n) {
			cnt++
		}
	}
	return cnt
}
