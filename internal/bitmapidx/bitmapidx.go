// Package bitmapidx implements the paper's §1.2 baseline: the
// equality-encoded bitmap index. For every character a ∈ Σ it stores the
// bitmap of I{a}, either explicitly (n bits each — optimal for constant σ)
// or run-length compressed with gamma codes. A range query reads the ℓ
// bitmaps of the characters in the range and unions them; §1.2 shows this
// reads a factor Ω(lg σ / lg(σ/ℓ)) more bits than the answer requires.
package bitmapidx

import (
	"fmt"

	"repro/internal/bitio"
	"repro/internal/cbitmap"
	"repro/internal/index"
	"repro/internal/iomodel"
	"repro/internal/workload"
)

// Index is a per-character bitmap index on a simulated disk.
type Index struct {
	disk       *iomodel.Disk
	n          int64
	sigma      int
	compressed bool
	exts       []iomodel.Extent // per character, contiguous on disk
	cards      []int64
	structBits int64
}

// Build constructs the index over col. If compressed is true each bitmap is
// gap+gamma coded; otherwise each bitmap is stored explicitly with n bits.
func Build(d *iomodel.Disk, col workload.Column, compressed bool) (*Index, error) {
	n := int64(col.Len())
	ix := &Index{disk: d, n: n, sigma: col.Sigma, compressed: compressed}
	byChar := make([][]int64, col.Sigma)
	for i, c := range col.X {
		if int(c) >= col.Sigma {
			return nil, fmt.Errorf("bitmapidx: character %d outside alphabet [0,%d)", c, col.Sigma)
		}
		byChar[c] = append(byChar[c], int64(i))
	}
	ix.exts = make([]iomodel.Extent, col.Sigma)
	ix.cards = make([]int64, col.Sigma)
	for a := 0; a < col.Sigma; a++ {
		ix.cards[a] = int64(len(byChar[a]))
		var w *bitio.Writer
		if compressed {
			bm, err := cbitmap.FromPositions(n, byChar[a])
			if err != nil {
				return nil, err
			}
			w = bitio.NewWriter(bm.SizeBits())
			bm.EncodeTo(w)
		} else {
			p := cbitmap.NewPlain(n)
			for _, pos := range byChar[a] {
				p.Set(pos)
			}
			w = bitio.NewWriter(int(n))
			writePlain(w, p, n)
		}
		ix.exts[a] = d.AllocStream(w)
	}
	// Directory: per character an (offset, length, cardinality) triple.
	ix.structBits = int64(col.Sigma) * 3 * 64
	return ix, nil
}

func writePlain(w *bitio.Writer, p *cbitmap.Plain, n int64) {
	for i := int64(0); i < n; i += 64 {
		var v uint64
		hi := i + 64
		if hi > n {
			hi = n
		}
		for j := i; j < hi; j++ {
			v <<= 1
			if p.Get(j) {
				v |= 1
			}
		}
		w.WriteBits(v, int(hi-i))
	}
}

// Name implements index.Index.
func (ix *Index) Name() string {
	if ix.compressed {
		return "bitmap-gamma"
	}
	return "bitmap-plain"
}

// Len implements index.Index.
func (ix *Index) Len() int64 { return ix.n }

// Sigma implements index.Index.
func (ix *Index) Sigma() int { return ix.sigma }

// SizeBits implements index.Index.
func (ix *Index) SizeBits() int64 {
	var bits int64
	for _, e := range ix.exts {
		bits += e.Bits
	}
	return bits + ix.structBits
}

// Query implements index.Index: read the bitmaps of all characters in the
// range and union them.
func (ix *Index) Query(r index.Range) (*cbitmap.Bitmap, index.QueryStats, error) {
	if err := r.Valid(ix.sigma); err != nil {
		return nil, index.QueryStats{}, err
	}
	t := ix.disk.NewTouch()
	var stats index.QueryStats
	if ix.compressed {
		ms := make([]*cbitmap.Bitmap, 0, r.Len())
		for a := r.Lo; a <= r.Hi; a++ {
			ext := ix.exts[a]
			rd, err := t.Reader(ext)
			if err != nil {
				return nil, stats, err
			}
			stats.BitsRead += ext.Bits
			bm, err := cbitmap.Decode(rd, ix.cards[a], ix.n)
			if err != nil {
				return nil, stats, fmt.Errorf("bitmapidx: char %d: %w", a, err)
			}
			ms = append(ms, bm)
		}
		out, err := cbitmap.Union(ms...)
		if err != nil {
			return nil, stats, err
		}
		stats.Reads, stats.Writes = t.Reads(), t.Writes()
		return out, stats, nil
	}
	acc := cbitmap.NewPlain(ix.n)
	for a := r.Lo; a <= r.Hi; a++ {
		ext := ix.exts[a]
		rd, err := t.Reader(ext)
		if err != nil {
			return nil, stats, err
		}
		stats.BitsRead += ext.Bits
		for i := int64(0); i < ix.n; {
			take := ix.n - i
			if take > 64 {
				take = 64
			}
			v, err := rd.ReadBits(int(take))
			if err != nil {
				return nil, stats, err
			}
			for j := int64(0); j < take; j++ {
				if v>>uint(take-1-j)&1 == 1 {
					acc.Set(i + j)
				}
			}
			i += take
		}
	}
	stats.Reads, stats.Writes = t.Reads(), t.Writes()
	return acc.Compress(), stats, nil
}

var _ index.Index = (*Index)(nil)
