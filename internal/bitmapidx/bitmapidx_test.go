package bitmapidx

import (
	"math/rand"
	"testing"

	"repro/internal/index"
	"repro/internal/iomodel"
	"repro/internal/workload"
)

func checkAgainstBrute(t *testing.T, ix index.Index, col workload.Column, q workload.RangeQuery) {
	t.Helper()
	got, _, err := ix.Query(index.Range{Lo: q.Lo, Hi: q.Hi})
	if err != nil {
		t.Fatalf("query [%d,%d]: %v", q.Lo, q.Hi, err)
	}
	want := workload.BruteForce(col, q)
	gp := got.Positions()
	if len(gp) != len(want) {
		t.Fatalf("query [%d,%d]: %d results, want %d", q.Lo, q.Hi, len(gp), len(want))
	}
	for i := range want {
		if gp[i] != want[i] {
			t.Fatalf("query [%d,%d]: result %d = %d, want %d", q.Lo, q.Hi, i, gp[i], want[i])
		}
	}
}

func TestCompressedCorrectness(t *testing.T) {
	col := workload.Uniform(5000, 64, 1)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 1024})
	ix, err := Build(d, col, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.RandomRanges(50, 64, 5, 2) {
		checkAgainstBrute(t, ix, col, q)
	}
	checkAgainstBrute(t, ix, col, workload.RangeQuery{Lo: 0, Hi: 63})
	checkAgainstBrute(t, ix, col, workload.RangeQuery{Lo: 7, Hi: 7})
}

func TestPlainCorrectness(t *testing.T) {
	col := workload.Uniform(2000, 16, 3)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 1024})
	ix, err := Build(d, col, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range workload.RandomRanges(20, 16, 3, 4) {
		checkAgainstBrute(t, ix, col, q)
	}
}

func TestPlainSpaceIsSigmaN(t *testing.T) {
	col := workload.Uniform(1024, 8, 5)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 512})
	ix, err := Build(d, col, false)
	if err != nil {
		t.Fatal(err)
	}
	payload := ix.SizeBits() - int64(8*3*64)
	if payload != 8*1024 {
		t.Fatalf("plain payload = %d bits, want %d", payload, 8*1024)
	}
}

func TestCompressedSmallerOnSkew(t *testing.T) {
	// Clustered data compresses much better than plain.
	col := workload.Runs(20000, 64, 100, 6)
	d1 := iomodel.NewDisk(iomodel.Config{BlockBits: 1024})
	d2 := iomodel.NewDisk(iomodel.Config{BlockBits: 1024})
	comp, err := Build(d1, col, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(d2, col, false)
	if err != nil {
		t.Fatal(err)
	}
	if comp.SizeBits() >= plain.SizeBits()/10 {
		t.Fatalf("compressed %d vs plain %d: expected >10x saving on clustered data",
			comp.SizeBits(), plain.SizeBits())
	}
}

func TestQueryIOsProportionalToRange(t *testing.T) {
	// The §1.2 critique: reading a range of length ℓ costs Θ(sum of the ℓ
	// bitmap sizes), so doubling ℓ should roughly double the reads.
	col := workload.Uniform(1<<16, 256, 7)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 2048})
	ix, err := Build(d, col, true)
	if err != nil {
		t.Fatal(err)
	}
	_, s8, err := ix.Query(index.Range{Lo: 0, Hi: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, s64, err := ix.Query(index.Range{Lo: 0, Hi: 63})
	if err != nil {
		t.Fatal(err)
	}
	if s64.BitsRead < 4*s8.BitsRead {
		t.Fatalf("bits read did not scale with range: ℓ=8 %d, ℓ=64 %d", s8.BitsRead, s64.BitsRead)
	}
}

func TestInvalidInputs(t *testing.T) {
	col := workload.Uniform(100, 8, 8)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 512})
	ix, err := Build(d, col, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Query(index.Range{Lo: 5, Hi: 4}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, _, err := ix.Query(index.Range{Lo: 0, Hi: 8}); err == nil {
		t.Fatal("out-of-alphabet range accepted")
	}
	bad := workload.Column{X: []uint32{9}, Sigma: 4}
	if _, err := Build(d, bad, true); err == nil {
		t.Fatal("out-of-alphabet character accepted")
	}
}

func TestEmptyCharacters(t *testing.T) {
	// Characters that never occur have empty bitmaps; queries over them
	// return empty without error.
	col := workload.Column{X: []uint32{0, 0, 3, 3}, Sigma: 8}
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 512})
	ix, err := Build(d, col, true)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Query(index.Range{Lo: 4, Hi: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 0 {
		t.Fatalf("expected empty, got %d", got.Card())
	}
	got, _, err = ix.Query(index.Range{Lo: 1, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Card() != 2 {
		t.Fatalf("card = %d, want 2", got.Card())
	}
}

func TestRandomizedSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		n := 100 + rng.Intn(3000)
		sigma := 2 + rng.Intn(100)
		col := workload.Uniform(n, sigma, int64(trial))
		d := iomodel.NewDisk(iomodel.Config{BlockBits: 512})
		ix, err := Build(d, col, trial%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload.RandomRanges(10, sigma, 1+rng.Intn(sigma), int64(trial)) {
			checkAgainstBrute(t, ix, col, q)
		}
	}
}
