package bitio

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPeekSkip exercises the window primitives against ReadBits.
func TestPeekSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w := NewWriter(0)
	for i := 0; i < 2000; i++ {
		w.WriteBits(rng.Uint64(), rng.Intn(65))
	}
	r := NewReader(w.Bytes(), w.Len())
	for r.Remaining() > 0 {
		n := rng.Intn(65)
		if n > r.Remaining() {
			n = r.Remaining()
		}
		pk, err := r.PeekBits(n)
		if err != nil {
			t.Fatal(err)
		}
		w64, avail := r.Peek64()
		wantAvail := r.Remaining()
		if wantAvail > 64 {
			wantAvail = 64
		}
		if avail != wantAvail {
			t.Fatalf("Peek64 avail = %d, want %d", avail, wantAvail)
		}
		if n > 0 && w64>>uint(64-n) != pk {
			t.Fatalf("Peek64 top %d bits %x != PeekBits %x", n, w64>>uint(64-n), pk)
		}
		rd, err := r.ReadBits(n)
		if err != nil {
			t.Fatal(err)
		}
		if rd != pk {
			t.Fatalf("PeekBits %x != ReadBits %x (n=%d)", pk, rd, n)
		}
	}
	if _, avail := r.Peek64(); avail != 0 {
		t.Fatalf("Peek64 at end: avail = %d", avail)
	}
	if err := r.SkipBits(1); err != ErrOutOfBits {
		t.Fatalf("SkipBits past end: %v", err)
	}
}

// TestSkipBitsMatchesRead verifies SkipBits advances exactly like ReadBits.
func TestSkipBitsMatchesRead(t *testing.T) {
	buf := make([]byte, 64)
	rand.New(rand.NewSource(22)).Read(buf)
	a := NewReader(buf, -1)
	b := NewReader(buf, -1)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 13} {
		if _, err := a.ReadBits(n); err != nil {
			t.Fatal(err)
		}
		if err := b.SkipBits(n); err != nil {
			t.Fatal(err)
		}
		if a.Pos() != b.Pos() {
			t.Fatalf("pos diverged: %d vs %d", a.Pos(), b.Pos())
		}
	}
}

// TestCopyBits checks the aligned byte-copy and unaligned word paths against
// a bit-by-bit reference.
func TestCopyBits(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		src := NewWriter(0)
		total := rng.Intn(700)
		for src.Len() < total {
			src.WriteBits(rng.Uint64(), rng.Intn(65))
		}
		prefix := rng.Intn(9) // destination alignment
		skip := 0
		if src.Len() > 0 {
			skip = rng.Intn(src.Len() + 1) // source alignment
		}
		n := src.Len() - skip

		fast := NewWriter(0)
		fast.WriteBits(uint64(trial), prefix)
		r := NewReader(src.Bytes(), src.Len())
		r.Seek(skip)
		if err := fast.CopyBits(r, n); err != nil {
			t.Fatal(err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: CopyBits left %d bits", trial, r.Remaining())
		}

		slow := NewWriter(0)
		slow.writeBitsSlow(uint64(trial), prefix)
		r2 := NewReader(src.Bytes(), src.Len())
		r2.Seek(skip)
		for i := 0; i < n; i++ {
			b, err := r2.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			slow.WriteBit(b)
		}
		if fast.Len() != slow.Len() || !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("trial %d: CopyBits diverged from reference (prefix=%d skip=%d n=%d)", trial, prefix, skip, n)
		}
	}
}

// FuzzWriteBitsFast: the word-at-a-time WriteBits must produce streams
// byte-identical to the retained bit-by-bit slow path.
func FuzzWriteBitsFast(f *testing.F) {
	f.Add(uint64(0xdeadbeef), uint8(13), uint64(1), uint8(64), uint64(0), uint8(0))
	f.Add(^uint64(0), uint8(64), ^uint64(0), uint8(7), uint64(5), uint8(3))
	f.Fuzz(func(t *testing.T, v1 uint64, n1 uint8, v2 uint64, n2 uint8, v3 uint64, n3 uint8) {
		vals := [...]uint64{v1, v2, v3}
		ns := [...]uint8{n1 % 65, n2 % 65, n3 % 65}
		fast := NewWriter(0)
		slow := NewWriter(0)
		for i := range vals {
			fast.WriteBits(vals[i], int(ns[i]))
			slow.writeBitsSlow(vals[i], int(ns[i]))
		}
		if fast.Len() != slow.Len() || !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("fast %x (%d bits) != slow %x (%d bits)", fast.Bytes(), fast.Len(), slow.Bytes(), slow.Len())
		}
	})
}

// FuzzReadFastVsSlow: on arbitrary byte streams, the windowed ReadBits and
// CLZ ReadUnary must agree exactly — values, positions, and errors — with the
// retained bit-by-bit slow paths.
func FuzzReadFastVsSlow(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0xff}, uint8(20), uint8(3))
	f.Add([]byte{}, uint8(0), uint8(1))
	f.Add([]byte{0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01}, uint8(80), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, nbit8 uint8, widthSeed uint8) {
		nbit := int(nbit8)
		if nbit > 8*len(data) {
			nbit = 8 * len(data)
		}
		fast := NewReader(data, nbit)
		slow := NewReader(data, nbit)
		for step := 0; step < 200; step++ {
			if step%2 == 0 {
				n := int(widthSeed+uint8(step)) % 65
				fv, ferr := fast.ReadBits(n)
				sv, serr := slow.readBitsSlow(n)
				if (ferr == nil) != (serr == nil) || fv != sv {
					t.Fatalf("ReadBits(%d) diverged: fast %x,%v slow %x,%v", n, fv, ferr, sv, serr)
				}
				if ferr != nil {
					return
				}
			} else {
				fv, ferr := fast.ReadUnary()
				sv, serr := slow.readUnarySlow()
				if (ferr == nil) != (serr == nil) || fv != sv {
					t.Fatalf("ReadUnary diverged: fast %d,%v slow %d,%v", fv, ferr, sv, serr)
				}
				if ferr != nil {
					return
				}
			}
			if fast.Pos() != slow.Pos() {
				t.Fatalf("position diverged: fast %d slow %d", fast.Pos(), slow.Pos())
			}
		}
	})
}

// FuzzAppendWriter: the byte-copy append must match bitwise re-writing for
// every alignment of destination and source.
func FuzzAppendWriter(f *testing.F) {
	f.Add(uint8(3), []byte{0xab, 0xcd}, uint8(11))
	f.Add(uint8(0), []byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, prefixBits uint8, body []byte, tailBits uint8) {
		other := NewWriter(0)
		for _, b := range body {
			other.WriteBits(uint64(b), 8)
		}
		other.WriteBits(uint64(tailBits), int(tailBits%9))

		fast := NewWriter(0)
		fast.WriteBits(^uint64(0), int(prefixBits%65))
		slow := NewWriter(0)
		slow.WriteBits(^uint64(0), int(prefixBits%65))

		fast.AppendWriter(other)
		r := NewReader(other.Bytes(), other.Len())
		for r.Remaining() > 0 {
			b, _ := r.ReadBit()
			slow.WriteBit(b)
		}
		if fast.Len() != slow.Len() || !bytes.Equal(fast.Bytes(), slow.Bytes()) {
			t.Fatalf("AppendWriter diverged: %x (%d) vs %x (%d)", fast.Bytes(), fast.Len(), slow.Bytes(), slow.Len())
		}
	})
}
