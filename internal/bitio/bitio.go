// Package bitio provides bit-granular readers and writers over byte slices.
//
// All compressed encodings in this repository (Elias gamma/delta codes,
// gap-encoded bitmaps, block-aligned bitmap pages) are built on this package.
// Bits are written most-significant-bit first within each byte, so that the
// encoded stream is a prefix of its own byte representation and positioned
// reads at arbitrary bit offsets are cheap. This MSB-first format is fixed:
// the word-at-a-time fast paths below (64-bit peek window, CLZ-based unary
// decode, byte-copy appends) change only how the stream is traversed, never
// a single bit of what is written, so encoded streams remain byte-identical
// to the original bit-by-bit implementation.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfBits is returned when a read runs past the end of the stream.
var ErrOutOfBits = errors.New("bitio: read past end of stream")

// Writer appends bits to an in-memory buffer, most significant bit first.
// The zero value is ready to use.
//
// Invariant: len(buf) == (nbit+7)/8 and all bits of buf past nbit are zero.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns a Writer with capacity for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the underlying buffer. The final byte is zero-padded.
// The returned slice aliases the writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to zero bits, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Grow ensures capacity for at least nbits further bits without changing the
// contents, so a reused writer can pre-size for a known output instead of
// growing through repeated appends.
func (w *Writer) Grow(nbits int) {
	if nbits <= 0 {
		return
	}
	need := (w.nbit + nbits + 7) / 8
	if cap(w.buf) < need {
		nb := make([]byte, len(w.buf), need)
		copy(nb, w.buf)
		w.buf = nb
	}
}

// Detach returns the written buffer (final byte zero-padded, exactly as
// Bytes) and resets the writer to empty without retaining a reference, so the
// caller takes sole ownership. This is the hand-off that lets pooled builders
// recycle everything except the bits they return.
func (w *Writer) Detach() []byte {
	buf := w.buf
	w.buf, w.nbit = nil, 0
	return buf
}

// WriteBit appends a single bit (any nonzero v writes a 1).
func (w *Writer) WriteBit(v uint) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, 0)
	}
	if v != 0 {
		w.buf[w.nbit>>3] |= 0x80 >> uint(w.nbit&7)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << uint(n)) - 1
	}
	hv := v << uint(64-n) // left-aligned: the first bit to land is bit 63
	if bitIdx := w.nbit & 7; bitIdx != 0 {
		// Merge the leading bits into the partially filled last byte. If n is
		// smaller than the room left, the low bits of hv>>56 are zero and the
		// OR is still exact.
		take := 8 - bitIdx
		if take > n {
			take = n
		}
		w.buf[len(w.buf)-1] |= byte(hv>>56) >> uint(bitIdx)
		hv <<= uint(take)
		w.nbit += take
		n -= take
		if n == 0 {
			return
		}
	}
	// Destination is now byte-aligned: append whole bytes, then the
	// zero-padded final partial byte.
	w.nbit += n
	if n == 64 {
		w.buf = binary.BigEndian.AppendUint64(w.buf, hv)
		return
	}
	for n >= 8 {
		w.buf = append(w.buf, byte(hv>>56))
		hv <<= 8
		n -= 8
	}
	if n > 0 {
		w.buf = append(w.buf, byte(hv>>56))
	}
}

// writeBitsSlow is the original byte-by-byte WriteBits, retained as the
// differential-testing oracle for the word-at-a-time path above.
func (w *Writer) writeBitsSlow(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	if n < 64 {
		v &= (1 << uint(n)) - 1
	}
	need := (w.nbit + n + 7) / 8
	for len(w.buf) < need {
		w.buf = append(w.buf, 0)
	}
	pos := w.nbit
	w.nbit += n
	for n > 0 {
		byteIdx := pos >> 3
		bitIdx := pos & 7
		room := 8 - bitIdx
		take := n
		if take > room {
			take = room
		}
		chunk := byte(v >> uint(n-take))
		chunk &= (1 << uint(take)) - 1
		w.buf[byteIdx] |= chunk << uint(room-take)
		pos += take
		n -= take
	}
}

// WriteUnary appends v zeros followed by a one (the unary code of v).
func (w *Writer) WriteUnary(v int) {
	if v < 0 {
		panic("bitio: negative unary value")
	}
	for v >= 64 {
		w.WriteBits(0, 64)
		v -= 64
	}
	w.WriteBits(1, v+1)
}

// Align pads with zero bits to the next multiple of n bits (n > 0).
func (w *Writer) Align(n int) {
	if n <= 0 {
		panic("bitio: Align with non-positive n")
	}
	if rem := w.nbit % n; rem != 0 {
		pad := n - rem
		for pad >= 64 {
			w.WriteBits(0, 64)
			pad -= 64
		}
		if pad > 0 {
			w.WriteBits(0, pad)
		}
	}
}

// AppendWriter appends the full contents of other to w.
func (w *Writer) AppendWriter(other *Writer) {
	if w.nbit&7 == 0 {
		// Byte-aligned destination: other's buffer is already the exact bit
		// stream (final byte zero-padded), so a byte copy preserves the
		// invariant.
		w.buf = append(w.buf, other.buf...)
		w.nbit += other.nbit
		return
	}
	r := NewReader(other.Bytes(), other.Len())
	w.CopyBits(r, other.Len())
}

// CopyBits moves n bits from r (consuming them) to the end of w. When both
// sides are byte-aligned this is a straight byte copy; otherwise it proceeds
// in 64-bit words.
func (w *Writer) CopyBits(r *Reader, n int) error {
	if n < 0 || n > r.Remaining() {
		return ErrOutOfBits
	}
	if r.pos&7 == 0 && w.nbit&7 == 0 {
		nbytes := n >> 3
		start := r.pos >> 3
		w.buf = append(w.buf, r.buf[start:start+nbytes]...)
		w.nbit += nbytes << 3
		r.pos += nbytes << 3
		n &= 7
	}
	for n >= 64 {
		v, _ := r.ReadBits(64)
		w.WriteBits(v, 64)
		n -= 64
	}
	if n > 0 {
		v, err := r.ReadBits(n)
		if err != nil {
			return err
		}
		w.WriteBits(v, n)
	}
	return nil
}

// Reader consumes bits from a byte slice, most significant bit first.
type Reader struct {
	buf  []byte
	nbit int // total readable bits
	pos  int // current bit position
}

// NewReader returns a Reader over buf exposing exactly nbit bits.
// If nbit is negative, all of buf (8*len(buf) bits) is exposed.
func NewReader(buf []byte, nbit int) *Reader {
	r := new(Reader)
	r.Init(buf, nbit)
	return r
}

// Init (re)initialises r in place to read nbit bits of buf, exactly as
// NewReader does but without allocating. It lets iterators embed a Reader by
// value.
func (r *Reader) Init(buf []byte, nbit int) {
	if nbit < 0 {
		nbit = 8 * len(buf)
	}
	if nbit > 8*len(buf) {
		panic(fmt.Sprintf("bitio: NewReader nbit %d exceeds buffer (%d bits)", nbit, 8*len(buf)))
	}
	r.buf, r.nbit, r.pos = buf, nbit, 0
}

// Len returns the total number of bits exposed by the reader.
func (r *Reader) Len() int { return r.nbit }

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Sub returns a Reader restricted to the nbits bits starting at absolute bit
// offset start of r's stream, positioned at the beginning of that range. The
// sub-reader shares r's buffer but advances independently, which is how the
// streaming decode pipeline carves per-member streams out of one contiguous
// extent read. Positions reported by the sub-reader stay in r's absolute
// coordinates.
func (r *Reader) Sub(start, nbits int) (Reader, error) {
	if start < 0 || nbits < 0 || start+nbits > r.nbit {
		return Reader{}, fmt.Errorf("bitio: Sub range [%d,%d) outside [0,%d]", start, start+nbits, r.nbit)
	}
	return Reader{buf: r.buf, nbit: start + nbits, pos: start}, nil
}

// Seek positions the reader at absolute bit offset pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside [0,%d]", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// window returns 64 bits starting at the current position, left-aligned (the
// bit at pos is bit 63 of the result). Bits past the end of the buffer read
// as zero; bits between nbit and the end of the buffer are NOT masked — use
// Peek64 for a masked view.
func (r *Reader) window() uint64 {
	byteIdx := r.pos >> 3
	shift := uint(r.pos & 7)
	if byteIdx+8 <= len(r.buf) {
		w := binary.BigEndian.Uint64(r.buf[byteIdx:]) << shift
		if shift != 0 && byteIdx+8 < len(r.buf) {
			w |= uint64(r.buf[byteIdx+8]) >> (8 - shift)
		}
		return w
	}
	var w uint64
	for i, sh := byteIdx, 56; i < len(r.buf); i, sh = i+1, sh-8 {
		w |= uint64(r.buf[i]) << uint(sh)
	}
	return w << shift
}

// Peek64 returns the next min(64, Remaining()) bits left-aligned (the bit at
// the current position is bit 63 of the result) without consuming them,
// together with that count. Bits past the end of the stream read as zero.
// This is the primitive the gamma/delta fast paths decode from.
func (r *Reader) Peek64() (uint64, int) {
	avail := r.nbit - r.pos
	if avail <= 0 {
		return 0, 0
	}
	if avail > 64 {
		avail = 64
	}
	w := r.window()
	if avail < 64 {
		w &= ^uint64(0) << uint(64-avail)
	}
	return w, avail
}

// PeekBits returns the next n bits (0 <= n <= 64) in the low bits of the
// result without consuming them.
func (r *Reader) PeekBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: PeekBits width %d out of range", n)
	}
	if r.pos+n > r.nbit {
		return 0, ErrOutOfBits
	}
	if n == 0 {
		return 0, nil
	}
	w := r.window()
	if n < 64 {
		w >>= uint(64 - n)
	}
	return w, nil
}

// SkipBits advances the reader by n bits.
func (r *Reader) SkipBits(n int) error {
	if n < 0 || r.pos+n > r.nbit {
		return ErrOutOfBits
	}
	r.pos += n
	return nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos>>3] >> uint(7-r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits reads n bits (0 <= n <= 64) into the low bits of the result.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits width %d out of range", n)
	}
	if r.pos+n > r.nbit {
		return 0, ErrOutOfBits
	}
	if n == 0 {
		return 0, nil
	}
	w := r.window()
	r.pos += n
	if n < 64 {
		w >>= uint(64 - n)
	}
	return w, nil
}

// readBitsSlow is the original byte-by-byte ReadBits, retained as the
// differential-testing oracle for the windowed path above.
func (r *Reader) readBitsSlow(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits width %d out of range", n)
	}
	if r.pos+n > r.nbit {
		return 0, ErrOutOfBits
	}
	var v uint64
	pos := r.pos
	r.pos += n
	for n > 0 {
		byteIdx := pos >> 3
		bitIdx := pos & 7
		room := 8 - bitIdx
		take := n
		if take > room {
			take = room
		}
		chunk := r.buf[byteIdx] >> uint(room-take)
		chunk &= (1 << uint(take)) - 1
		v = v<<uint(take) | uint64(chunk)
		pos += take
		n -= take
	}
	return v, nil
}

// ReadUnary reads a unary code (count of zeros before the terminating one).
// It counts leading zeros 64 bits at a time instead of looping per bit.
func (r *Reader) ReadUnary() (int, error) {
	n := 0
	for {
		w, avail := r.Peek64()
		if avail == 0 {
			return 0, ErrOutOfBits
		}
		if w == 0 {
			// The whole window is zeros: consume it and continue. If the
			// window was short, the stream ended without a terminating one.
			n += avail
			r.pos += avail
			if avail < 64 {
				return 0, ErrOutOfBits
			}
			continue
		}
		z := bits.LeadingZeros64(w)
		r.pos += z + 1
		return n + z, nil
	}
}

// readUnarySlow is the original bit-by-bit ReadUnary, retained as the
// differential-testing oracle for the CLZ path above.
func (r *Reader) readUnarySlow() (int, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return n, nil
		}
		n++
		if n > r.nbit {
			return 0, errors.New("bitio: unterminated unary code")
		}
	}
}
