// Package bitio provides bit-granular readers and writers over byte slices.
//
// All compressed encodings in this repository (Elias gamma/delta codes,
// gap-encoded bitmaps, block-aligned bitmap pages) are built on this package.
// Bits are written most-significant-bit first within each byte, so that the
// encoded stream is a prefix of its own byte representation and positioned
// reads at arbitrary bit offsets are cheap.
package bitio

import (
	"errors"
	"fmt"
)

// ErrOutOfBits is returned when a read runs past the end of the stream.
var ErrOutOfBits = errors.New("bitio: read past end of stream")

// Writer appends bits to an in-memory buffer, most significant bit first.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total bits written
}

// NewWriter returns a Writer with capacity for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the underlying buffer. The final byte is zero-padded.
// The returned slice aliases the writer's storage.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset truncates the writer to zero bits, retaining capacity.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBit appends a single bit (any nonzero v writes a 1).
func (w *Writer) WriteBit(v uint) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, 0)
	}
	if v != 0 {
		w.buf[w.nbit>>3] |= 0x80 >> uint(w.nbit&7)
	}
	w.nbit++
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d out of range", n))
	}
	if n < 64 {
		v &= (1 << uint(n)) - 1
	}
	// Grow the buffer to hold nbit+n bits.
	need := (w.nbit + n + 7) / 8
	for len(w.buf) < need {
		w.buf = append(w.buf, 0)
	}
	pos := w.nbit
	w.nbit += n
	for n > 0 {
		byteIdx := pos >> 3
		bitIdx := pos & 7
		room := 8 - bitIdx // bits available in current byte
		take := n
		if take > room {
			take = room
		}
		// Bits to place: the top `take` of the remaining n bits of v.
		chunk := byte(v >> uint(n-take))
		chunk &= (1 << uint(take)) - 1
		w.buf[byteIdx] |= chunk << uint(room-take)
		pos += take
		n -= take
	}
}

// WriteUnary appends v zeros followed by a one (the unary code of v).
func (w *Writer) WriteUnary(v int) {
	if v < 0 {
		panic("bitio: negative unary value")
	}
	for v >= 64 {
		w.WriteBits(0, 64)
		v -= 64
	}
	w.WriteBits(1, v+1)
}

// Align pads with zero bits to the next multiple of n bits (n > 0).
func (w *Writer) Align(n int) {
	if n <= 0 {
		panic("bitio: Align with non-positive n")
	}
	if rem := w.nbit % n; rem != 0 {
		pad := n - rem
		for pad >= 64 {
			w.WriteBits(0, 64)
			pad -= 64
		}
		if pad > 0 {
			w.WriteBits(0, pad)
		}
	}
}

// AppendWriter appends the full contents of other to w.
func (w *Writer) AppendWriter(other *Writer) {
	r := NewReader(other.Bytes(), other.Len())
	remaining := other.Len()
	for remaining >= 64 {
		v, _ := r.ReadBits(64)
		w.WriteBits(v, 64)
		remaining -= 64
	}
	if remaining > 0 {
		v, _ := r.ReadBits(remaining)
		w.WriteBits(v, remaining)
	}
}

// Reader consumes bits from a byte slice, most significant bit first.
type Reader struct {
	buf  []byte
	nbit int // total readable bits
	pos  int // current bit position
}

// NewReader returns a Reader over buf exposing exactly nbit bits.
// If nbit is negative, all of buf (8*len(buf) bits) is exposed.
func NewReader(buf []byte, nbit int) *Reader {
	if nbit < 0 {
		nbit = 8 * len(buf)
	}
	if nbit > 8*len(buf) {
		panic(fmt.Sprintf("bitio: NewReader nbit %d exceeds buffer (%d bits)", nbit, 8*len(buf)))
	}
	return &Reader{buf: buf, nbit: nbit}
}

// Len returns the total number of bits exposed by the reader.
func (r *Reader) Len() int { return r.nbit }

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Seek positions the reader at absolute bit offset pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.nbit {
		return fmt.Errorf("bitio: seek to %d outside [0,%d]", pos, r.nbit)
	}
	r.pos = pos
	return nil
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.nbit {
		return 0, ErrOutOfBits
	}
	b := (r.buf[r.pos>>3] >> uint(7-r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits reads n bits (0 <= n <= 64) into the low bits of the result.
func (r *Reader) ReadBits(n int) (uint64, error) {
	if n < 0 || n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits width %d out of range", n)
	}
	if r.pos+n > r.nbit {
		return 0, ErrOutOfBits
	}
	var v uint64
	pos := r.pos
	r.pos += n
	for n > 0 {
		byteIdx := pos >> 3
		bitIdx := pos & 7
		room := 8 - bitIdx
		take := n
		if take > room {
			take = room
		}
		chunk := r.buf[byteIdx] >> uint(room-take)
		chunk &= (1 << uint(take)) - 1
		v = v<<uint(take) | uint64(chunk)
		pos += take
		n -= take
	}
	return v, nil
}

// ReadUnary reads a unary code (count of zeros before the terminating one).
func (r *Reader) ReadUnary() (int, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return n, nil
		}
		n++
		if n > r.nbit {
			return 0, errors.New("bitio: unterminated unary code")
		}
	}
}
