package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrOutOfBits {
		t.Fatalf("read past end: err = %v, want ErrOutOfBits", err)
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type item struct {
		v uint64
		n int
	}
	var items []item
	w := NewWriter(0)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(65)
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << uint(n)) - 1
		}
		items = append(items, item{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %x want %x (n=%d)", i, got, it.v, it.n)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", r.Remaining())
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(^uint64(0), 3) // only low 3 bits should land
	r := NewReader(w.Bytes(), w.Len())
	v, err := r.ReadBits(3)
	if err != nil || v != 7 {
		t.Fatalf("got %d,%v want 7,nil", v, err)
	}
}

func TestUnary(t *testing.T) {
	w := NewWriter(0)
	vals := []int{0, 1, 2, 5, 63, 64, 65, 130, 1000}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("unary %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("unary %d = %d, want %d", i, got, want)
		}
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(5, 3)
	w.Align(8)
	if w.Len() != 8 {
		t.Fatalf("Len after align = %d, want 8", w.Len())
	}
	w.Align(8) // already aligned: no-op
	if w.Len() != 8 {
		t.Fatalf("Len after second align = %d, want 8", w.Len())
	}
	w.WriteBit(1)
	w.Align(64)
	if w.Len() != 64 {
		t.Fatalf("Len after align 64 = %d, want 64", w.Len())
	}
}

func TestSeek(t *testing.T) {
	w := NewWriter(0)
	for i := 0; i < 100; i++ {
		w.WriteBits(uint64(i), 7)
	}
	r := NewReader(w.Bytes(), w.Len())
	if err := r.Seek(7 * 42); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadBits(7)
	if err != nil || v != 42 {
		t.Fatalf("after seek: got %d,%v want 42,nil", v, err)
	}
	if err := r.Seek(w.Len() + 1); err == nil {
		t.Fatal("seek past end should error")
	}
	if err := r.Seek(-1); err == nil {
		t.Fatal("negative seek should error")
	}
}

func TestAppendWriter(t *testing.T) {
	a := NewWriter(0)
	a.WriteBits(0b101, 3)
	b := NewWriter(0)
	for i := 0; i < 50; i++ {
		b.WriteBits(uint64(i%2), 1)
		b.WriteBits(uint64(i), 13)
	}
	a.AppendWriter(b)
	if a.Len() != 3+50*14 {
		t.Fatalf("combined len = %d", a.Len())
	}
	r := NewReader(a.Bytes(), a.Len())
	v, _ := r.ReadBits(3)
	if v != 0b101 {
		t.Fatalf("prefix = %b", v)
	}
	for i := 0; i < 50; i++ {
		bit, _ := r.ReadBits(1)
		val, _ := r.ReadBits(13)
		if bit != uint64(i%2) || val != uint64(i) {
			t.Fatalf("item %d: bit=%d val=%d", i, bit, val)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint16, widthSeed uint8) bool {
		w := NewWriter(0)
		width := int(widthSeed%16) + 1
		mask := uint64(1)<<uint(width) - 1
		for _, v := range vals {
			w.WriteBits(uint64(v)&mask, width)
		}
		r := NewReader(w.Bytes(), w.Len())
		for _, v := range vals {
			got, err := r.ReadBits(width)
			if err != nil || got != uint64(v)&mask {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBounds(t *testing.T) {
	r := NewReader([]byte{0xff}, 4)
	if _, err := r.ReadBits(5); err != ErrOutOfBits {
		t.Fatalf("want ErrOutOfBits, got %v", err)
	}
	if _, err := r.ReadBits(-1); err == nil {
		t.Fatal("negative width should error")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("width > 64 should error")
	}
	v, err := r.ReadBits(4)
	if err != nil || v != 0xf {
		t.Fatalf("got %x,%v", v, err)
	}
}
