#!/usr/bin/env bash
# Capture CPU and allocation pprof profiles for the end-to-end query
# benchmarks, so regressions in the fused streaming pipeline can be
# attributed to a function rather than guessed at.
#
# Usage: scripts/profile.sh [bench-regex] [outdir]
#   bench-regex  benchmarks to profile (default: BenchmarkIndexQuery)
#   outdir       where to write cpu.pprof / mem.pprof / bench.txt
#                (default: profiles/)
# Env: BENCHTIME overrides the per-benchmark time (default 2s).
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${1:-BenchmarkIndexQuery}"
OUT="${2:-profiles}"
mkdir -p "$OUT"

go test -run '^$' -bench "$PATTERN" -benchmem \
  -benchtime "${BENCHTIME:-2s}" \
  -cpuprofile "$OUT/cpu.pprof" -memprofile "$OUT/mem.pprof" \
  -o "$OUT/bench.test" . | tee "$OUT/bench.txt"

echo
echo "== top CPU =="
go tool pprof -top -nodecount 15 "$OUT/bench.test" "$OUT/cpu.pprof" | sed -n '1,22p'
echo
echo "== top allocated objects =="
go tool pprof -top -nodecount 15 -sample_index=alloc_objects "$OUT/bench.test" "$OUT/mem.pprof" | sed -n '1,22p'
echo
echo "profiles written to $OUT/ (inspect with: go tool pprof $OUT/bench.test $OUT/cpu.pprof)"
