#!/usr/bin/env bash
# Run the decode-path and query-engine micro-benchmarks and emit
# BENCH_<tag>.json so the perf trajectory is tracked from PR to PR.
#
# Usage: scripts/bench.sh [tag] [count]
#   tag    suffix for the output file (default: 3, matching this PR's number)
#   count  benchmark repetitions (default: 3)
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-3}"
COUNT="${2:-3}"
PATTERN='BenchmarkGammaDecode|BenchmarkBitioReadUnary|BenchmarkBitmapUnion|BenchmarkBitmapIntersect|BenchmarkContains|BenchmarkBitmapDecode|BenchmarkShardedQuery|BenchmarkShardedQueryBatch|BenchmarkIndexQuery'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$RAW"

python3 - "$RAW" "BENCH_${TAG}.json" <<'EOF'
import json, re, statistics, sys

raw, out = sys.argv[1], sys.argv[2]
runs = {}
extra = {}
for line in open(raw):
    m = re.match(r'(Benchmark[\w/=.-]+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)', line)
    if not m:
        continue
    name = m.group(1)
    runs.setdefault(name, []).append(float(m.group(3)))
    for val, unit in re.findall(r'([\d.]+) ([\w/%-]+)', m.group(4)):
        if unit != 'ns/op':
            extra.setdefault(name, {}).setdefault(unit, []).append(float(val))

result = {
    name: {
        'ns_per_op_median': statistics.median(vals),
        'runs': len(vals),
        **{u.replace('/', '_per_'): statistics.median(v)
           for u, v in extra.get(name, {}).items()},
    }
    for name, vals in sorted(runs.items())
}
with open(out, 'w') as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write('\n')
print(f'wrote {out} ({len(result)} benchmarks)')
EOF
