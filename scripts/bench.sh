#!/usr/bin/env bash
# Run the decode-path, query-engine and write-path micro-benchmarks and emit
# BENCH_<tag>.json so the perf trajectory is tracked from PR to PR.
#
# After writing the new file, the script compares allocs/op and blockIO/op
# (including blockIO/batch) against the most recent committed BENCH_<n>.json
# — both are deterministic across machines, unlike ns/op — and fails loudly
# on a >20% regression in any benchmark present in both files.
#
# Usage: scripts/bench.sh [tag] [count]
#   tag    suffix for the output file (default: 6, matching this PR's number)
#   count  benchmark repetitions (default: 3)
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-6}"
COUNT="${2:-3}"
PATTERN='BenchmarkGammaDecode|BenchmarkBitioReadUnary|BenchmarkBitmapUnion|BenchmarkBitmapIntersect|BenchmarkContains|BenchmarkBitmapDecode|BenchmarkShardedQuery|BenchmarkShardedQueryBatch|BenchmarkIndexQuery|BenchmarkAppendDirect|BenchmarkAppendBuffered|BenchmarkRebuild|BenchmarkBuildOptimal|BenchmarkDynamicChange|BenchmarkServeSim'
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$RAW"

python3 - "$RAW" "BENCH_${TAG}.json" <<'EOF'
import glob, json, re, statistics, sys

raw, out = sys.argv[1], sys.argv[2]
runs = {}
extra = {}
for line in open(raw):
    m = re.match(r'(Benchmark[\w/=.-]+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)', line)
    if not m:
        continue
    name = m.group(1)
    runs.setdefault(name, []).append(float(m.group(3)))
    for val, unit in re.findall(r'([\d.]+) ([\w/%-]+)', m.group(4)):
        if unit != 'ns/op':
            extra.setdefault(name, {}).setdefault(unit, []).append(float(val))

result = {
    name: {
        'ns_per_op_median': statistics.median(vals),
        'runs': len(vals),
        **{u.replace('/', '_per_'): statistics.median(v)
           for u, v in extra.get(name, {}).items()},
    }
    for name, vals in sorted(runs.items())
}
with open(out, 'w') as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write('\n')
print(f'wrote {out} ({len(result)} benchmarks)')

# --- Allocation regression gate vs the previous committed BENCH file. ---
def tag_of(path):
    m = re.fullmatch(r'BENCH_(\d+)\.json', path)
    return int(m.group(1)) if m else None

cur_tag = tag_of(out)
candidates = sorted(
    (t, p) for p in glob.glob('BENCH_*.json')
    if (t := tag_of(p)) is not None and (cur_tag is None or t < cur_tag)
)
if not candidates:
    print('no previous BENCH file; skipping allocation regression gate')
    sys.exit(0)
prev_tag, prev_path = candidates[-1]
prev = json.load(open(prev_path))
# Gated metrics: allocation counts and I/O-model block counts. Both carry
# 20% relative headroom plus 2 absolute slack, so benchmarks with
# single-digit counts do not flap on a one-unit wobble.
GATED = ('allocs_per_op', 'blockIO_per_op', 'blockIO_per_batch')
regressions = []
for name, cur in result.items():
    old = prev.get(name)
    if old is None:
        continue
    for metric in GATED:
        if metric not in old or metric not in cur:
            continue
        limit = old[metric] * 1.2 + 2
        if cur[metric] > limit:
            regressions.append(
                f"  {name}: {cur[metric]:.1f} {metric} vs {old[metric]:.1f} in {prev_path} (limit {limit:.1f})")
if regressions:
    print(f'BENCHMARK REGRESSION vs {prev_path}:')
    print('\n'.join(regressions))
    sys.exit(1)
print(f'allocs/blockIO regression gate passed vs {prev_path}')
EOF
