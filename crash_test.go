package secidx

// The crash-injection recovery harness: run a logged workload on the
// journaling CrashFS, then for EVERY byte-granular crash point replay the
// journal into a filesystem snapshot, reopen through the production
// recovery path, and check the three durability invariants:
//
//  1. Recovery never panics and — absent injected corruption — never fails.
//  2. Atomicity: the recovered index equals the indexed prefix of the
//     acknowledged operation sequence (never a partial op, never a
//     reordering, never a dropped interior op).
//  3. Durability: every operation acknowledged at or below the handle's
//     reported durable watermark at crash time is present.
//
// Each crash point is checked under both journal views: optimistic (every
// written byte survived, in-flight writes torn mid-record) and pessimistic
// (only explicitly synced bytes and directory entries survived).

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/wal"
)

// crashOp is one intended operation of a workload, applied identically to
// the index under test and the plain-column model.
type crashOp struct {
	kind byte // 'a' append, 'c' change, 'd' delete
	pos  int64
	ch   uint32
}

func (op crashOp) apply(o *Opened) error {
	var err error
	switch {
	case o.Append != nil:
		_, err = o.Append.Append(op.ch)
	case op.kind == 'a':
		_, err = o.Dynamic.Append(op.ch)
	case op.kind == 'c':
		_, err = o.Dynamic.Change(op.pos, op.ch)
	default:
		_, err = o.Dynamic.Delete(op.pos)
	}
	return err
}

func (op crashOp) applyModel(col []uint32) []uint32 {
	switch op.kind {
	case 'a':
		return append(col, op.ch)
	case 'c':
		col[op.pos] = op.ch
	default:
		col[op.pos] = ^uint32(0)
	}
	return col
}

// crashWorkload builds a deterministic op sequence from a tiny PRNG.
func crashWorkload(kind string, initial []uint32, sigma, nOps int, seed uint64) []crashOp {
	rng := seed
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	ops := make([]crashOp, 0, nOps)
	dead := make([]bool, len(initial)) // changes must target live positions
	for len(ops) < nOps {
		r := next()
		if kind == "append" {
			ops = append(ops, crashOp{kind: 'a', ch: uint32(r % uint64(sigma))})
			continue
		}
		rows := int64(len(dead))
		switch r % 5 {
		case 0, 1:
			ops = append(ops, crashOp{kind: 'a', ch: uint32((r >> 8) % uint64(sigma))})
			dead = append(dead, false)
		case 2, 3:
			pos := int64((r >> 8) % uint64(rows))
			for n := int64(0); n < rows && dead[pos]; n++ {
				pos = (pos + 1) % rows
			}
			if dead[pos] { // everything deleted: append instead
				ops = append(ops, crashOp{kind: 'a', ch: uint32((r >> 40) % uint64(sigma))})
				dead = append(dead, false)
				break
			}
			ops = append(ops, crashOp{kind: 'c', pos: pos, ch: uint32((r >> 40) % uint64(sigma))})
		default:
			pos := int64((r >> 8) % uint64(rows))
			ops = append(ops, crashOp{kind: 'd', pos: pos})
			dead[pos] = true
		}
	}
	return ops
}

// opTrace records, per acknowledged op, the journal clock around it and the
// durability watermark the handle reported afterwards.
type opTrace struct {
	seq     uint64
	start   int64
	end     int64
	durable uint64
}

type crashScenario struct {
	name    string
	kind    string // "append" or "dynamic"
	opts    Options
	policy  SyncPolicy
	grpOps  int
	ckptOps int
	nOps    int
	seed    uint64
	faults  wal.FaultSchedule // zero: pure crash injection, all ops succeed
}

// runCrashScenario executes one scenario and returns how many crash points
// it checked.
func runCrashScenario(t *testing.T, sc crashScenario) int {
	t.Helper()
	const sigma = 5
	initial := []uint32{3, 1, 4, 1, 0, 2, 3, 2, 4, 0, 1, 3}

	build := func() (any, func(string) error) {
		if sc.kind == "append" {
			ix, err := BuildAppend(initial, sigma, sc.opts)
			if err != nil {
				t.Fatal(err)
			}
			return ix, ix.WriteFile
		}
		ix, err := BuildDynamic(initial, sigma, sc.opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix, ix.WriteFile
	}
	_, writeFile := build()

	dir := t.TempDir()
	path := filepath.Join(dir, "crash.secidx")
	if err := writeFile(path); err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfs := wal.NewCrashFS()
	cfs.Seed(path, base)
	seedClock := cfs.Clock() // crash points before the base existed are moot

	wo := &WALOptions{
		fsys:            cfs,
		Policy:          sc.policy,
		GroupOps:        sc.grpOps,
		CheckpointOps:   sc.ckptOps,
		CheckpointBytes: -1,
	}
	o, err := OpenFile(path, OpenOptions{WAL: wo})
	if err != nil {
		t.Fatalf("workload open: %v", err)
	}
	if sc.faults != (wal.FaultSchedule{}) {
		cfs.SetFaults(sc.faults) // armed after open: the ops hit the faults
	}

	ops := crashWorkload(sc.kind, initial, sigma, sc.nOps, sc.seed)
	var trace []opTrace
	inflightStart := int64(-1) // start tick of the op that errored, if any
	for i, op := range ops {
		start := cfs.Clock()
		if err := op.apply(o); err != nil {
			if sc.faults == (wal.FaultSchedule{}) {
				t.Fatalf("op %d failed with no faults scheduled: %v", i, err)
			}
			inflightStart = start
			break // handle is sticky-broken from here
		}
		trace = append(trace, opTrace{seq: o.LastSeq(), start: start, end: cfs.Clock(), durable: o.DurableSeq()})
	}
	if inflightStart < 0 {
		if err := o.Close(); err != nil {
			t.Fatalf("workload close: %v", err)
		}
	} else {
		o.Close() // broken handle: the error is expected, the journal stands
	}
	if sc.faults != (wal.FaultSchedule{}) && cfs.ShortWrites()+cfs.FailedSyncs() == 0 {
		t.Fatalf("fault schedule %+v injected nothing — pick a hotter seed or rate", sc.faults)
	}
	events := cfs.Events()
	endClock := cfs.Clock()

	// Crash points: every event boundary; every byte inside small writes
	// (log records — the torn-record cases); sampled offsets inside large
	// writes (container rewrites).
	tickSet := map[int64]bool{seedClock: true, endClock: true}
	for _, ev := range events {
		if ev.Start < seedClock {
			continue
		}
		tickSet[ev.Start] = true
		if ev.Kind != wal.EvWrite {
			continue
		}
		n := int64(len(ev.Data))
		if n <= 128 {
			for b := int64(1); b < n; b++ {
				tickSet[ev.Start+b] = true
			}
		} else {
			for _, b := range []int64{1, n / 3, n / 2, n - 1} {
				tickSet[ev.Start+b] = true
			}
		}
	}
	ticks := make([]int64, 0, len(tickSet))
	for c := range tickSet {
		ticks = append(ticks, c)
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
	stride := 1
	if testing.Short() {
		stride = 9
	}

	// Model columns per recovered sequence number, memoised.
	prefixCol := func(k uint64) []uint32 {
		col := append([]uint32(nil), initial...)
		for _, op := range ops[:k] {
			col = op.applyModel(col)
		}
		return col
	}
	colMemo := map[uint64][]uint32{}

	scratch := filepath.Join(dir, "recover")
	points := 0
	for i := 0; i < len(ticks); i += stride {
		c := ticks[i]
		// Acknowledgement bounds at this crash point.
		var minK, maxK uint64
		for _, tr := range trace {
			if tr.end <= c && tr.durable > minK {
				minK = tr.durable
			}
			if tr.start <= c && tr.seq > maxK {
				maxK = tr.seq
			}
		}
		// Eventually-acknowledged ops in flight at c already count in maxK
		// (their start precedes c). The only op that can reach the log
		// without ever being acknowledged is the one that errored.
		if inflightStart >= 0 && inflightStart <= c {
			maxK++
		}

		for _, optimistic := range []bool{true, false} {
			st := wal.StateAt(events, c, optimistic)
			if err := os.RemoveAll(scratch); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(scratch, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, data := range st {
				if err := os.WriteFile(filepath.Join(scratch, filepath.Base(name)), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			rp := filepath.Join(scratch, filepath.Base(path))
			if _, err := os.Stat(rp); err != nil {
				t.Fatalf("tick %d optimistic=%v: base container missing from crash state", c, optimistic)
			}
			ro, err := OpenFile(rp, OpenOptions{WAL: &WALOptions{CheckpointBytes: -1}})
			if err != nil {
				t.Fatalf("tick %d optimistic=%v: recovery failed: %v", c, optimistic, err)
			}
			k := ro.LastSeq()
			if k < minK || k > maxK {
				ro.Close()
				t.Fatalf("tick %d optimistic=%v: recovered seq %d outside [%d, %d]", c, optimistic, k, minK, maxK)
			}
			col, ok := colMemo[k]
			if !ok {
				col = prefixCol(k)
				colMemo[k] = col
			}
			var rows func(lo, hi uint32) []int64
			if ro.Append != nil {
				rows = appendRows(ro.Append)
			} else {
				rows = dynamicRows(ro.Dynamic)
			}
			queriesEqual(t, sigma, rows, modelRows(col))
			if err := ro.Close(); err != nil {
				t.Fatalf("tick %d optimistic=%v: close after recovery: %v", c, optimistic, err)
			}
			points++
		}
	}
	return points
}

// TestCrashMatrix is the main differential: three workload shapes × two
// sync policies, pure crash injection (no write faults), every crash point
// checked under both journal views.
func TestCrashMatrix(t *testing.T) {
	scenarios := []crashScenario{
		{name: "append-direct/every-op", kind: "append", policy: SyncEveryOp, ckptOps: 7, nOps: 30, seed: 101},
		{name: "append-direct/grouped", kind: "append", policy: SyncGrouped, grpOps: 3, ckptOps: 7, nOps: 30, seed: 102},
		{name: "append-buffered/every-op", kind: "append", opts: Options{Buffered: true}, policy: SyncEveryOp, ckptOps: 7, nOps: 30, seed: 103},
		{name: "append-buffered/grouped", kind: "append", opts: Options{Buffered: true}, policy: SyncGrouped, grpOps: 3, ckptOps: 7, nOps: 30, seed: 104},
		{name: "dynamic/every-op", kind: "dynamic", policy: SyncEveryOp, ckptOps: 7, nOps: 30, seed: 105},
		{name: "dynamic/grouped", kind: "dynamic", policy: SyncGrouped, grpOps: 3, ckptOps: 7, nOps: 30, seed: 106},
	}
	total := 0
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			n := runCrashScenario(t, sc)
			t.Logf("%s: %d crash points", sc.name, n)
			total += n
		})
	}
	if !testing.Short() && total < 1000 {
		t.Fatalf("crash matrix covered only %d points, want >= 1000", total)
	}
	t.Logf("crash matrix total: %d points", total)
}

// TestCrashMatrixWithWriteFaults layers seeded device faults (short log
// writes, failed syncs) on top of crash injection: operations may fail, the
// handle breaks sticky, but every recovery must still satisfy the
// invariants.
func TestCrashMatrixWithWriteFaults(t *testing.T) {
	for i, sc := range []crashScenario{
		{name: "append/short-writes", kind: "append", policy: SyncEveryOp, ckptOps: 5, nOps: 40, seed: 201,
			faults: wal.FaultSchedule{Seed: 11, ShortWritePer10k: 600}},
		{name: "append/failed-syncs", kind: "append", policy: SyncEveryOp, ckptOps: 5, nOps: 40, seed: 202,
			faults: wal.FaultSchedule{Seed: 12, FailSyncPer10k: 500}},
		{name: "dynamic/mixed", kind: "dynamic", policy: SyncGrouped, grpOps: 3, ckptOps: 5, nOps: 40, seed: 203,
			faults: wal.FaultSchedule{Seed: 13, ShortWritePer10k: 400, FailSyncPer10k: 300}},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			n := runCrashScenario(t, sc)
			t.Logf("%s: %d crash points (faulty run %d)", sc.name, n, i)
		})
	}
}
