// OLAP example: the paper's §1 motivation. "In a database of people we may
// want to find all married men of age 33. This can be done by combining
// information found in secondary indexes for the attributes specifying
// marital status, sex, and age" — RID intersection across one-dimensional
// secondary indexes, the workhorse of OLAP, information retrieval and
// scientific data analysis.
package main

import (
	"fmt"
	"log"
	"math/rand"

	secidx "repro"
)

const (
	nPeople = 200000

	sexFemale = 0
	sexMale   = 1

	maritalSingle   = 0
	maritalMarried  = 1
	maritalDivorced = 2
	maritalWidowed  = 3
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Three attributes of the same people table.
	age := make([]uint32, nPeople)     // 0..99 years
	sex := make([]uint32, nPeople)     // 2 values
	marital := make([]uint32, nPeople) // 4 values
	for i := 0; i < nPeople; i++ {
		age[i] = uint32(rng.Intn(100))
		sex[i] = uint32(rng.Intn(2))
		// Skewed marital status: mostly single or married.
		switch r := rng.Float64(); {
		case r < 0.35:
			marital[i] = maritalSingle
		case r < 0.80:
			marital[i] = maritalMarried
		case r < 0.93:
			marital[i] = maritalDivorced
		default:
			marital[i] = maritalWidowed
		}
	}

	// One secondary index per attribute. A shared Seed lets approximate
	// results from different indexes intersect without I/O.
	opts := secidx.Options{Seed: 99}
	ageIx, err := secidx.Build(age, 100, opts)
	if err != nil {
		log.Fatal(err)
	}
	sexIx, err := secidx.Build(sex, 2, opts)
	if err != nil {
		log.Fatal(err)
	}
	maritalIx, err := secidx.Build(marital, 4, opts)
	if err != nil {
		log.Fatal(err)
	}
	total := ageIx.SizeBits() + sexIx.SizeBits() + maritalIx.SizeBits()
	fmt.Printf("3 secondary indexes over %d rows: %.1f bits/row total\n",
		nPeople, float64(total)/float64(nPeople))

	// --- Exact plan: query each index, intersect the RID sets. ---
	ageRes, ageStats, err := ageIx.Query(33, 33)
	if err != nil {
		log.Fatal(err)
	}
	menRes, menStats, err := sexIx.Query(sexMale, sexMale)
	if err != nil {
		log.Fatal(err)
	}
	marriedRes, marStats, err := maritalIx.Query(maritalMarried, maritalMarried)
	if err != nil {
		log.Fatal(err)
	}
	step, err := ageRes.Intersect(menRes)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := step.Intersect(marriedRes)
	if err != nil {
		log.Fatal(err)
	}
	reads := ageStats.Reads + menStats.Reads + marStats.Reads
	bits := ageStats.BitsRead + menStats.BitsRead + marStats.BitsRead
	fmt.Printf("\nexact RID intersection: married men of age 33 -> %d rows\n", exact.Card())
	fmt.Printf("  index layer: %d block reads, %d bits read\n", reads, bits)

	// Note the selectivities: sex=male matches half the table, married
	// nearly half — but the *answers are dense*, so the compressed RID
	// sets stay small, which is exactly the regime the paper optimises
	// ("the time spent by the secondary indexes may be dominant").
	fmt.Printf("  per-dimension matches: age=%d, men=%d, married=%d\n",
		ageRes.Card(), menRes.Card(), marriedRes.Card())

	// --- Approximate plan (Theorem 3): filter each dimension at eps, then
	// verify the few surviving candidates against the base table. ---
	const eps = 1.0 / 64
	ageA, aSt, err := ageIx.ApproxQuery(33, 33, eps)
	if err != nil {
		log.Fatal(err)
	}
	menA, mSt, err := sexIx.ApproxQuery(sexMale, sexMale, eps)
	if err != nil {
		log.Fatal(err)
	}
	marA, rSt, err := maritalIx.ApproxQuery(maritalMarried, maritalMarried, eps)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := secidx.IntersectApprox(ageA, menA, marA)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := cand.Rows()
	if err != nil {
		log.Fatal(err)
	}
	// Verify candidates against the stored attributes (the row fetch the
	// query performs anyway); false positives fall away here.
	verified := 0
	for _, i := range rows {
		if age[i] == 33 && sex[i] == sexMale && marital[i] == maritalMarried {
			verified++
		}
	}
	fmt.Printf("\napprox plan @ eps=%v: %d candidates -> %d verified rows\n",
		eps, len(rows), verified)
	fmt.Printf("  index layer: %d bits read (vs %d exact)\n",
		aSt.BitsRead+mSt.BitsRead+rSt.BitsRead, bits)
	if int64(verified) != exact.Card() {
		log.Fatalf("approximate plan verified %d rows, exact plan found %d", verified, exact.Card())
	}
	fmt.Println("  both plans agree.")
}
