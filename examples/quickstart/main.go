// Quickstart: build a secondary index over a single column and run range
// queries, exact and approximate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	secidx "repro"
)

func main() {
	// A column of 100,000 rows with keys in [0, 1000): think of it as the
	// "age in months" attribute of a fact table.
	const n, sigma = 100000, 1000
	rng := rand.New(rand.NewSource(1))
	col := make([]uint32, n)
	for i := range col {
		col[i] = uint32(rng.Intn(sigma))
	}

	// Build the static index (Theorem 2 + Theorem 3 structure).
	ix, err := secidx.Build(col, sigma, secidx.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d rows over alphabet %d: %.1f bits/row\n",
		ix.Len(), ix.Sigma(), float64(ix.SizeBits())/float64(ix.Len()))

	// An exact range query: rows with key in [120, 131].
	res, stats, err := ix.Query(120, 131)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact query [120,131]: %d rows, %d block reads, %d bits read\n",
		res.Card(), stats.Reads, stats.BitsRead)
	fmt.Printf("  first rows: %v\n", res.Rows()[:5])

	// The same query with 1%% false positives reads fewer bits; membership
	// tests on the result cost no I/O at all.
	ares, astats, err := ix.ApproxQuery(120, 131, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approx query [120,131] @ eps=0.01: %d candidates, %d bits read\n",
		ares.CandidateCount(), astats.BitsRead)
	hit := res.Rows()[0]
	fmt.Printf("  contains row %d (a true match): %v\n", hit, ares.Contains(hit))

	// Results compose: intersect two ranges on the same column.
	resB, _, err := ix.Query(0, 499)
	if err != nil {
		log.Fatal(err)
	}
	both, err := res.Intersect(resB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows in [120,131] AND [0,499]: %d\n", both.Card())
}
