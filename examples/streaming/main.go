// Streaming ingest example (Theorems 4 and 5): OLAP and scientific data are
// "typically read and append only", so the paper dynamises its structure for
// appends first. This example ingests a stream of measurements while serving
// range queries, comparing the direct (Theorem 4) and buffered (Theorem 5)
// append paths.
package main

import (
	"fmt"
	"log"
	"math/rand"

	secidx "repro"
)

func main() {
	const (
		sigma   = 128    // sensor reading, quantised to 128 buckets
		batches = 50     // query after every batch
		batchSz = 2000   // appended rows per batch
		seed    = 424242 // deterministic stream
	)

	for _, buffered := range []bool{false, true} {
		variant := "direct (Theorem 4)"
		if buffered {
			variant = "buffered (Theorem 5)"
		}
		ix, err := secidx.BuildAppend(nil, sigma, secidx.Options{Buffered: buffered})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		var appendIOs, queryReads int64
		var mirror []uint32

		for b := 0; b < batches; b++ {
			// Readings drift over time: a moving hot band plus noise —
			// realistic sensor behaviour that skews the alphabet and
			// forces the structure to rebalance.
			center := (b * 97) % sigma
			for i := 0; i < batchSz; i++ {
				v := center + int(rng.NormFloat64()*8)
				if v < 0 {
					v = 0
				}
				if v >= sigma {
					v = sigma - 1
				}
				st, err := ix.Append(uint32(v))
				if err != nil {
					log.Fatal(err)
				}
				appendIOs += int64(st.Reads + st.Writes)
				mirror = append(mirror, uint32(v))
			}
			// A dashboard query over the current hot band.
			lo := uint32(center)
			hi := lo + 15
			if hi >= sigma {
				hi = sigma - 1
			}
			res, st, err := ix.Query(lo, hi)
			if err != nil {
				log.Fatal(err)
			}
			queryReads += int64(st.Reads)
			// Spot-check against the mirror.
			var want int64
			for _, v := range mirror {
				if v >= lo && v <= hi {
					want++
				}
			}
			if res.Card() != want {
				log.Fatalf("%s: batch %d query [%d,%d]: got %d want %d",
					variant, b, lo, hi, res.Card(), want)
			}
		}
		total := int64(batches * batchSz)
		fmt.Printf("%s:\n", variant)
		fmt.Printf("  ingested %d rows: %.3f I/Os per append (amortised)\n",
			total, float64(appendIOs)/float64(total))
		fmt.Printf("  %d interleaved queries: %.1f block reads each, all verified\n",
			batches, float64(queryReads)/float64(batches))
		fmt.Printf("  final index: %.1f bits/row\n\n", float64(ix.SizeBits())/float64(ix.Len()))
	}
}
