// High-dimensional approximate filtering (§1 and §3 of the paper): with d
// range conditions, filtering each dimension at false-positive rate ε keeps
// a non-matching point that satisfies only k of d conditions with
// probability at most ε^(d−k). The survivors are verified against the
// stored keys, so the final answer is exact while the index layer reads
// O(z lg(1/ε)) bits per dimension instead of O(z lg(n/z)).
//
// Theorem 3's savings appear for *selective* conditions (z/ε below an
// intermediate hashed universe 2^(2^j) ≪ n); for dense conditions the query
// falls back to the exact path. This example uses high-cardinality
// attributes with near-point predicates — the selective regime.
package main

import (
	"fmt"
	"log"
	"math/rand"

	secidx "repro"
)

func main() {
	const (
		n     = 50000
		d     = 4 // dimensions
		sigma = 2048
		eps   = 0.3
	)
	rng := rand.New(rand.NewSource(3))

	// A conjunctive near-point query: dimension j must lie in a 2-character
	// band, matching ~n/1024 ≈ 49 points per dimension.
	los := make([]uint32, d)
	his := make([]uint32, d)
	for j := range los {
		lo := uint32(rng.Intn(sigma - 2))
		los[j], his[j] = lo, lo+1
	}

	// d high-cardinality attributes of n points: independent noise plus a
	// correlated cluster of 10 points inside the query box (real data is
	// correlated — that is why conjunctions return anything at all).
	cols := make([][]uint32, d)
	for j := range cols {
		cols[j] = make([]uint32, n)
		for i := range cols[j] {
			cols[j][i] = uint32(rng.Intn(sigma))
		}
	}
	for c := 0; c < 10; c++ {
		i := rng.Intn(n)
		for j := range cols {
			cols[j][i] = los[j] + uint32(rng.Intn(2))
		}
	}
	ixs := make([]*secidx.Index, d)
	for j := range cols {
		ix, err := secidx.Build(cols[j], sigma, secidx.Options{Seed: 1234})
		if err != nil {
			log.Fatal(err)
		}
		ixs[j] = ix
	}

	// Exact plan.
	exactSets := make([]map[int64]bool, d)
	var exactBits int64
	for j := range ixs {
		res, st, err := ixs[j].Query(los[j], his[j])
		if err != nil {
			log.Fatal(err)
		}
		exactBits += st.BitsRead
		exactSets[j] = map[int64]bool{}
		for _, i := range res.Rows() {
			exactSets[j][i] = true
		}
	}
	exactMatches := 0
	for i := range exactSets[0] {
		all := true
		for j := 1; j < d; j++ {
			if !exactSets[j][i] {
				all = false
				break
			}
		}
		if all {
			exactMatches++
		}
	}
	fmt.Printf("%d-dimensional conjunction over %d points: %d exact matches\n", d, n, exactMatches)
	fmt.Printf("exact plan read %d bits from the indexes\n", exactBits)

	// Approximate plan: eps-filter per dimension, intersect without I/O,
	// verify survivors against the stored keys.
	results := make([]*secidx.ApproxResult, d)
	var approxBits int64
	hashed := 0
	for j := range ixs {
		res, st, err := ixs[j].ApproxQuery(los[j], his[j], eps)
		if err != nil {
			log.Fatal(err)
		}
		approxBits += st.BitsRead
		if !res.IsExact() {
			hashed++
		}
		results[j] = res
	}
	cand, err := secidx.IntersectApprox(results...)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := cand.Rows()
	if err != nil {
		log.Fatal(err)
	}
	verified := 0
	for _, i := range rows {
		ok := true
		for j := range cols {
			v := cols[j][i]
			if v < los[j] || v > his[j] {
				ok = false
				break
			}
		}
		if ok {
			verified++
		}
	}
	fmt.Printf("approx plan @ eps=%v: %d/%d dimensions answered from hashed sets\n", eps, hashed, d)
	fmt.Printf("  read %d bits (%.0f%% of exact), %d candidates, %d verified matches\n",
		approxBits, 100*float64(approxBits)/float64(exactBits), len(rows), verified)
	if verified != exactMatches {
		log.Fatalf("mismatch: %d verified vs %d exact", verified, exactMatches)
	}

	// "Approximate range search": points satisfying >= d-1 of the d
	// conditions, counted from the same per-dimension approximate results
	// and verified.
	counts := map[int64]int{}
	for _, res := range results {
		rs, err := res.Rows()
		if err != nil {
			log.Fatal(err)
		}
		for _, i := range rs {
			counts[i]++
		}
	}
	atLeastIdx := 0
	for i, c := range counts {
		if c < d-1 {
			continue
		}
		hits := 0
		for j := range cols {
			v := cols[j][int(i)]
			if v >= los[j] && v <= his[j] {
				hits++
			}
		}
		if hits >= d-1 {
			atLeastIdx++
		}
	}
	atLeastTrue := 0
	for i := 0; i < n; i++ {
		hits := 0
		for j := range cols {
			v := cols[j][i]
			if v >= los[j] && v <= his[j] {
				hits++
			}
		}
		if hits >= d-1 {
			atLeastTrue++
		}
	}
	fmt.Printf("\"in >= %d of %d dimensions\": %d points (index-filtered count %d)\n",
		d-1, d, atLeastTrue, atLeastIdx)
	if atLeastIdx != atLeastTrue {
		log.Fatalf("approximate >=k filter missed points: %d vs %d", atLeastIdx, atLeastTrue)
	}
	fmt.Println("done.")
}
