package secidx

import (
	"context"
	"time"

	"repro/internal/index"
	"repro/internal/iomodel"
	"repro/internal/shard"
)

// Range is an alphabet range query [Lo,Hi] (inclusive), the batch-query
// request unit.
type Range struct {
	Lo, Hi uint32
}

// FaultConfig describes a deterministic, seeded device fault schedule for
// chaos testing a sharded index. Each per-10k rate draws a sticky per-block
// fate from the seed, so whether a given block is faulty — and how — is
// fixed for the life of the device and independent of read order:
//
//   - a transient block fails its first TransientCount charged reads with a
//     retriable error, then heals;
//   - a permanent block fails every charged read;
//   - a corrupt block serves its data with one deterministic bit flipped,
//     which the decode pipeline surfaces as a corruption error.
//
// Read faults fire only on charged device reads — never on blocks already
// resident in the session or block cache — and only while armed
// (ShardedIndex.ArmFaults). Write faults (FailedWritePer10k,
// ShortWritePer10k) fire on the write path of writable devices: a faulty
// block's first write fails, tearing the multi-block write it belongs to
// exactly as a crashed device write would; the block then heals so a retry
// succeeds. Shard i draws from Seed+i, so shards fail independently like
// independent physical devices.
type FaultConfig struct {
	Seed int64
	// TransientPer10k, PermanentPer10k and CorruptPer10k are per-10000 block
	// probabilities of each fault class.
	TransientPer10k int
	// TransientCount is how many times a transient block fails before it
	// heals (default 1).
	TransientCount  int
	PermanentPer10k int
	CorruptPer10k   int
	// ReadLatency is injected before every charged read while armed.
	ReadLatency time.Duration
	// FailedWritePer10k and ShortWritePer10k are per-10000 block
	// probabilities of the write-side fates: a failed write tears before the
	// faulty block's bits are applied, a short write after. Each fires once
	// per block, then the block heals. Enabling them leaves the read-fault
	// schedule of a given Seed bit-identical.
	FailedWritePer10k int
	ShortWritePer10k  int
}

func (fc *FaultConfig) toInternal() *iomodel.FaultConfig {
	if fc == nil {
		return nil
	}
	return &iomodel.FaultConfig{
		Seed:              fc.Seed,
		TransientPer10k:   fc.TransientPer10k,
		TransientCount:    fc.TransientCount,
		PermanentPer10k:   fc.PermanentPer10k,
		CorruptPer10k:     fc.CorruptPer10k,
		ReadLatency:       fc.ReadLatency,
		FailedWritePer10k: fc.FailedWritePer10k,
		ShortWritePer10k:  fc.ShortWritePer10k,
	}
}

// RetryPolicy bounds per-shard retries of transiently failing reads. Only
// transient device faults are retried; permanent faults, corruption and
// cancellation fail (or degrade) immediately. The zero value retries
// nothing.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per shard operation,
	// including the first (values < 1 mean 1).
	MaxAttempts int
	// Backoff is the base sleep before the first retry, doubling per attempt
	// and capped at MaxBackoff when MaxBackoff > 0, then jittered to a
	// deterministic point in [base/2, base) drawn from (JitterSeed, shard,
	// attempt) — concurrent per-shard retries decorrelate instead of
	// convoying, and a fixed seed reproduces the exact schedule. Waits honour
	// context cancellation.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic backoff jitter (zero is a valid
	// seed).
	JitterSeed int64
}

func (p RetryPolicy) toInternal() shard.RetryPolicy {
	return shard.RetryPolicy{
		MaxAttempts: p.MaxAttempts,
		Backoff:     p.Backoff,
		MaxBackoff:  p.MaxBackoff,
		JitterSeed:  p.JitterSeed,
	}
}

// QueryOptions configures one fault-tolerant query execution.
type QueryOptions struct {
	// Retry is the per-shard retry policy for transient device faults.
	Retry RetryPolicy
	// AllowPartial opts into degraded answers: shards that still fail after
	// retries are dropped from the merge and reported through the ShardError
	// slice instead of failing the whole query. Cancellation is never
	// degraded.
	AllowPartial bool
}

func (qo QueryOptions) toInternal() shard.ExecOptions {
	return shard.ExecOptions{
		Retry:        qo.Retry.toInternal(),
		AllowPartial: qo.AllowPartial,
	}
}

// ShardError reports one shard's failure inside a degraded (AllowPartial)
// answer: the global row range whose answer bits are missing, how many
// attempts were made, and the last error.
type ShardError struct {
	Shard            int
	RowStart, RowEnd int64 // global rows [RowStart, RowEnd) not answered
	Attempts         int
	Err              error
}

func (e ShardError) Error() string { return e.toShard().Error() }

func (e ShardError) Unwrap() error { return e.Err }

func (e ShardError) toShard() shard.ShardError {
	return shard.ShardError{Shard: e.Shard, RowStart: e.RowStart, RowEnd: e.RowEnd, Attempts: e.Attempts, Err: e.Err}
}

func fromShardErrors(es []shard.ShardError) []ShardError {
	if es == nil {
		return nil
	}
	out := make([]ShardError, len(es))
	for i, e := range es {
		out[i] = ShardError{Shard: e.Shard, RowStart: e.RowStart, RowEnd: e.RowEnd, Attempts: e.Attempts, Err: e.Err}
	}
	return out
}

// ShardOptions configures BuildSharded.
type ShardOptions struct {
	// Options carries the per-shard index parameters (BlockBits, MemBits,
	// Branching, Stride, Seed); Buffered is ignored, shards are static.
	Options
	// Shards is the number of contiguous row-range shards (default 1).
	Shards int
	// Workers bounds concurrent shard builds and queries (default GOMAXPROCS).
	Workers int
	// CacheBlocks enables an LRU block cache of that many blocks on each
	// shard's device: repeated queries stop re-reading hot superblocks, and
	// DeviceStats reports the hit/miss counters. Zero disables caching.
	CacheBlocks int
	// Faults, when non-nil, backs every shard with a fault-injecting device
	// running this schedule. Builds are never faulted; call ArmFaults to
	// start the schedule firing on query reads.
	Faults *FaultConfig
}

// ShardedIndex partitions the column into contiguous row-range shards, each
// a static Index (Theorem 2) on its own simulated disk — the I/O model's
// view of parallel storage as independent block devices. Queries fan out
// across shards through a bounded worker pool; each shard runs the fused
// streaming pipeline (decode and merge in one pass over the bits it reads)
// and the compressed per-shard answers feed the same streaming merge with
// row-id offsetting. Results are identical, bit for bit, to a single
// unsharded Index over the same column.
type ShardedIndex struct {
	sx   *shard.Index
	opts ShardOptions // retained for serialisation (WriteFile)
}

// BuildSharded constructs a sharded index over data (values in [0,sigma)).
// Shards build in parallel, bounded by opts.Workers.
func BuildSharded(data []uint32, sigma int, opts ShardOptions) (*ShardedIndex, error) {
	sx, err := shard.Build(data, sigma, shard.Options{
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		BlockBits:   opts.BlockBits,
		MemBits:     opts.MemBits,
		CacheBlocks: opts.CacheBlocks,
		Branching:   opts.Branching,
		Stride:      opts.Stride,
		Seed:        opts.Seed,
		Faults:      opts.Faults.toInternal(),
	})
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{sx: sx, opts: opts}, nil
}

// Len returns the number of rows indexed.
func (ix *ShardedIndex) Len() int64 { return ix.sx.Len() }

// Sigma returns the alphabet size.
func (ix *ShardedIndex) Sigma() int { return ix.sx.Sigma() }

// Shards returns the number of shards.
func (ix *ShardedIndex) Shards() int { return ix.sx.Shards() }

// SizeBits returns the total space usage across all shards.
func (ix *ShardedIndex) SizeBits() int64 { return ix.sx.SizeBits() }

// Query answers I[lo;hi] exactly, fanning out across shards. Stats sum the
// per-shard I/O; on independent devices the critical path is the largest
// per-shard share.
func (ix *ShardedIndex) Query(lo, hi uint32) (*Result, Stats, error) {
	return ix.QueryContext(context.Background(), lo, hi)
}

// QueryContext answers like Query, honouring ctx: cancellation stops
// scheduling shard tasks and checkpoints inside each shard's pipeline.
func (ix *ShardedIndex) QueryContext(ctx context.Context, lo, hi uint32) (*Result, Stats, error) {
	bm, st, err := ix.sx.QueryContext(ctx, index.Range{Lo: lo, Hi: hi})
	if err != nil {
		return nil, fromQS(st), err
	}
	return &Result{bm: bm}, fromQS(st), nil
}

// QueryExec is the fault-tolerant query entry point: per-shard bounded
// retries for transient device faults, and (with opts.AllowPartial) a
// degraded answer merging only the healthy shards. The returned ShardError
// slice is non-nil exactly when the answer is partial; its entries name the
// global row ranges whose bits are missing.
func (ix *ShardedIndex) QueryExec(ctx context.Context, lo, hi uint32, opts QueryOptions) (*Result, Stats, []ShardError, error) {
	bm, st, report, err := ix.sx.QueryExec(ctx, index.Range{Lo: lo, Hi: hi}, opts.toInternal())
	if err != nil {
		return nil, fromQS(st), nil, err
	}
	return &Result{bm: bm}, fromQS(st), fromShardErrors(report), nil
}

// QueryBatch answers a batch of ranges through the shared-scan batch
// planner: duplicate ranges are deduplicated (answered once, shared), each
// shard plans and executes the whole batch in one pass — overlapping ranges
// read every coalesced cover-chunk extent once per shard — and the per-range
// cross-shard merges run through one bounded worker pool. A failing shard
// short-circuits the rest of the batch. The i-th result answers ranges[i];
// stats are batch-level, with the block reads avoided by sharing reported in
// Stats.SharedSaved and DeviceStats.SharedSaved.
func (ix *ShardedIndex) QueryBatch(ranges []Range) ([]*Result, Stats, error) {
	return ix.QueryBatchContext(context.Background(), ranges)
}

// QueryBatchContext answers like QueryBatch, honouring ctx.
func (ix *ShardedIndex) QueryBatchContext(ctx context.Context, ranges []Range) ([]*Result, Stats, error) {
	out, st, _, err := ix.QueryBatchExec(ctx, ranges, QueryOptions{})
	return out, st, err
}

// QueryBatchExec is the fault-tolerant batch entry point, the batch
// analogue of QueryExec. With a non-nil ShardError slice, every returned
// result is missing the reported shards' rows.
func (ix *ShardedIndex) QueryBatchExec(ctx context.Context, ranges []Range, opts QueryOptions) ([]*Result, Stats, []ShardError, error) {
	rs := make([]index.Range, len(ranges))
	for i, r := range ranges {
		rs[i] = index.Range{Lo: r.Lo, Hi: r.Hi}
	}
	bms, st, report, err := ix.sx.QueryBatchExec(ctx, rs, opts.toInternal())
	if err != nil {
		return nil, fromQS(st), nil, err
	}
	out := make([]*Result, len(bms))
	for i, bm := range bms {
		out[i] = &Result{bm: bm}
	}
	return out, fromQS(st), fromShardErrors(report), nil
}

// ArmFaults starts the fault schedule of ShardOptions.Faults firing on
// query reads; it is a no-op without one. Builds always run disarmed.
func (ix *ShardedIndex) ArmFaults() { ix.sx.ArmFaults() }

// DisarmFaults stops fault injection on every shard.
func (ix *ShardedIndex) DisarmFaults() { ix.sx.DisarmFaults() }

// DeviceStats reports the cumulative block-device counters summed over all
// shard disks, including block-cache hits and misses when CacheBlocks > 0.
type DeviceStats struct {
	BlockReads  int64
	BlockWrites int64
	CacheHits   int64
	CacheMisses int64
	// SharedSaved counts block reads avoided by shared-scan batch sessions:
	// blocks several queries of one batch needed but the batch read once.
	// Unlike CacheHits (residency across operations) it measures sharing
	// within single batches.
	SharedSaved int64
	// FailedReads counts device read attempts that failed under an armed
	// fault schedule, including transient failures later recovered by retry.
	FailedReads int64
}

// DeviceStats returns the summed per-shard device counters.
func (ix *ShardedIndex) DeviceStats() DeviceStats {
	st := ix.sx.DeviceStats()
	return DeviceStats{
		BlockReads:  st.BlockReads,
		BlockWrites: st.BlockWrites,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
		SharedSaved: st.SharedSaved,
		FailedReads: st.FailedReads,
	}
}

// ResetDeviceStats zeroes the per-shard device counters (used by the scaling
// experiment to isolate query-phase I/O).
func (ix *ShardedIndex) ResetDeviceStats() {
	ix.sx.ResetDeviceStats()
}
