package secidx

import (
	"repro/internal/index"
	"repro/internal/shard"
)

// Range is an alphabet range query [Lo,Hi] (inclusive), the batch-query
// request unit.
type Range struct {
	Lo, Hi uint32
}

// ShardOptions configures BuildSharded.
type ShardOptions struct {
	// Options carries the per-shard index parameters (BlockBits, MemBits,
	// Branching, Stride, Seed); Buffered is ignored, shards are static.
	Options
	// Shards is the number of contiguous row-range shards (default 1).
	Shards int
	// Workers bounds concurrent shard builds and queries (default GOMAXPROCS).
	Workers int
	// CacheBlocks enables an LRU block cache of that many blocks on each
	// shard's device: repeated queries stop re-reading hot superblocks, and
	// DeviceStats reports the hit/miss counters. Zero disables caching.
	CacheBlocks int
}

// ShardedIndex partitions the column into contiguous row-range shards, each
// a static Index (Theorem 2) on its own simulated disk — the I/O model's
// view of parallel storage as independent block devices. Queries fan out
// across shards through a bounded worker pool; each shard runs the fused
// streaming pipeline (decode and merge in one pass over the bits it reads)
// and the compressed per-shard answers feed the same streaming merge with
// row-id offsetting. Results are identical, bit for bit, to a single
// unsharded Index over the same column.
type ShardedIndex struct {
	sx *shard.Index
}

// BuildSharded constructs a sharded index over data (values in [0,sigma)).
// Shards build in parallel, bounded by opts.Workers.
func BuildSharded(data []uint32, sigma int, opts ShardOptions) (*ShardedIndex, error) {
	sx, err := shard.Build(data, sigma, shard.Options{
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		BlockBits:   opts.BlockBits,
		MemBits:     opts.MemBits,
		CacheBlocks: opts.CacheBlocks,
		Branching:   opts.Branching,
		Stride:      opts.Stride,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedIndex{sx: sx}, nil
}

// Len returns the number of rows indexed.
func (ix *ShardedIndex) Len() int64 { return ix.sx.Len() }

// Sigma returns the alphabet size.
func (ix *ShardedIndex) Sigma() int { return ix.sx.Sigma() }

// Shards returns the number of shards.
func (ix *ShardedIndex) Shards() int { return ix.sx.Shards() }

// SizeBits returns the total space usage across all shards.
func (ix *ShardedIndex) SizeBits() int64 { return ix.sx.SizeBits() }

// Query answers I[lo;hi] exactly, fanning out across shards. Stats sum the
// per-shard I/O; on independent devices the critical path is the largest
// per-shard share.
func (ix *ShardedIndex) Query(lo, hi uint32) (*Result, Stats, error) {
	bm, st, err := ix.sx.Query(index.Range{Lo: lo, Hi: hi})
	if err != nil {
		return nil, fromQS(st), err
	}
	return &Result{bm: bm}, fromQS(st), nil
}

// QueryBatch answers a batch of ranges through the shared-scan batch
// planner: duplicate ranges are deduplicated (answered once, shared), each
// shard plans and executes the whole batch in one pass — overlapping ranges
// read every coalesced cover-chunk extent once per shard — and the per-range
// cross-shard merges run through one bounded worker pool. A failing shard
// short-circuits the rest of the batch. The i-th result answers ranges[i];
// stats are batch-level, with the block reads avoided by sharing reported in
// Stats.SharedSaved and DeviceStats.SharedSaved.
func (ix *ShardedIndex) QueryBatch(ranges []Range) ([]*Result, Stats, error) {
	rs := make([]index.Range, len(ranges))
	for i, r := range ranges {
		rs[i] = index.Range{Lo: r.Lo, Hi: r.Hi}
	}
	bms, st, err := ix.sx.QueryBatch(rs)
	if err != nil {
		return nil, fromQS(st), err
	}
	out := make([]*Result, len(bms))
	for i, bm := range bms {
		out[i] = &Result{bm: bm}
	}
	return out, fromQS(st), nil
}

// DeviceStats reports the cumulative block-device counters summed over all
// shard disks, including block-cache hits and misses when CacheBlocks > 0.
type DeviceStats struct {
	BlockReads  int64
	BlockWrites int64
	CacheHits   int64
	CacheMisses int64
	// SharedSaved counts block reads avoided by shared-scan batch sessions:
	// blocks several queries of one batch needed but the batch read once.
	// Unlike CacheHits (residency across operations) it measures sharing
	// within single batches.
	SharedSaved int64
}

// DeviceStats returns the summed per-shard device counters.
func (ix *ShardedIndex) DeviceStats() DeviceStats {
	st := ix.sx.DeviceStats()
	return DeviceStats{
		BlockReads:  st.BlockReads,
		BlockWrites: st.BlockWrites,
		CacheHits:   st.CacheHits,
		CacheMisses: st.CacheMisses,
		SharedSaved: st.SharedSaved,
	}
}

// ResetDeviceStats zeroes the per-shard device counters (used by the scaling
// experiment to isolate query-phase I/O).
func (ix *ShardedIndex) ResetDeviceStats() {
	ix.sx.ResetDeviceStats()
}
