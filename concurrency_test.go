package secidx

import (
	"sync"
	"testing"
)

// TestParallelQueries exercises the static index from many goroutines: the
// structure is immutable after Build and Touch sessions are per-query, so
// concurrent reads must be safe (run under -race).
func TestParallelQueries(t *testing.T) {
	x := randColumn(20000, 128, 11)
	ix, err := Build(x, 128, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				lo := uint32((g*13 + i*7) % 120)
				res, _, err := ix.Query(lo, lo+7)
				if err != nil {
					errs <- err
					return
				}
				want := bruteRange(x, lo, lo+7)
				if res.Card() != int64(len(want)) {
					errs <- errMismatch{}
					return
				}
				ares, _, err := ix.ApproxQuery(lo, lo+7, 0.1)
				if err != nil {
					errs <- err
					return
				}
				for _, r := range want[:min(len(want), 5)] {
					if !ares.Contains(r) {
						errs <- errMismatch{}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "parallel query result mismatch" }
