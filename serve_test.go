package secidx

import (
	"context"
	"errors"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"
)

// servePair builds a fault-free oracle and a fault-injected twin over the
// same column.
func servePair(t *testing.T, n, sigma, shards int, fc FaultConfig) (ref, chaos *ShardedIndex) {
	t.Helper()
	data := randColumn(n, sigma, 47)
	ref, err := BuildSharded(data, sigma, ShardOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	chaos, err = BuildSharded(data, sigma, ShardOptions{Shards: shards, Faults: &fc})
	if err != nil {
		t.Fatal(err)
	}
	return ref, chaos
}

// TestServeChaos is the real-server (wall-clock, -race) half of the
// tentpole harness: a saturating storm of concurrent queries against a
// fault-injected index. The server must shed rather than collapse — the
// queue stays bounded, every submit returns promptly with an answer or a
// typed shed — and every served answer must be bit-identical to the
// fault-free oracle. Shutdown must leak nothing.
func TestServeChaos(t *testing.T) {
	before := runtime.NumGoroutine()
	ref, chaos := servePair(t, 8000, 64, 4, FaultConfig{Seed: 5, TransientPer10k: 3000, TransientCount: 3, ReadLatency: 20 * time.Microsecond})
	chaos.ArmFaults()
	defer chaos.DisarmFaults()

	srv, err := chaos.Serve(ServerConfig{
		MaxQueue: 32, MaxBatch: 8, MaxWait: 200 * time.Microsecond, Workers: 2,
		AllowPartial:     true,
		Retry:            RetryPolicy{MaxAttempts: 5, Backoff: 50 * time.Microsecond, JitterSeed: 7},
		BreakerThreshold: 6, BreakerCooldown: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 16, 40
	type answer struct {
		lo, hi uint32
		res    *ServedResult
		err    error
	}
	answers := make([][]answer, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for q := 0; q < perClient; q++ {
				lo := uint32((c*13 + q*5) % 56)
				hi := lo + 7
				res, err := srv.Query(context.Background(), lo, hi)
				answers[c] = append(answers[c], answer{lo: lo, hi: hi, res: res, err: err})
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	var served, shed, failed int
	for c := range answers {
		for _, a := range answers[c] {
			switch {
			case a.err == nil:
				served++
				if len(a.res.Report) > 0 {
					continue // degraded answers are a strict subset; covered by shard tests
				}
				want, _, err := ref.Query(a.lo, a.hi)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(a.res.Result.Rows(), want.Rows()) {
					t.Fatalf("served answer for [%d,%d] differs from fault-free oracle", a.lo, a.hi)
				}
			case errors.Is(a.err, ErrOverloaded):
				shed++
			default:
				failed++
			}
		}
	}
	total := clients * perClient
	if served == 0 {
		t.Fatal("chaos storm served nothing")
	}
	if uint64(served) != st.Completed || st.Admitted != st.Completed+st.Failed {
		t.Fatalf("served=%d shed=%d failed=%d vs stats %+v: answers lost", served, shed, failed, st)
	}
	if st.Admitted+st.Shed != uint64(total) {
		t.Fatalf("admitted %d + shed %d != %d submits", st.Admitted, st.Shed, total)
	}
	if st.QueueMax > 32 {
		t.Fatalf("queue high-water %d exceeded MaxQueue 32", st.QueueMax)
	}
	if st.Batches >= st.Admitted && st.Admitted > 0 {
		t.Fatalf("%d batches for %d admitted requests: no batching", st.Batches, st.Admitted)
	}
	if st.FailedReads == 0 || st.RetriedReads == 0 {
		t.Fatalf("faults armed but FailedReads=%d RetriedReads=%d", st.FailedReads, st.RetriedReads)
	}
	assertNoLeaks(t, before)
}

// TestServeUnshardedIndex: the single-device adapter serves through the
// same layer — batching happens, answers match direct queries, and the
// server shuts down clean.
func TestServeUnshardedIndex(t *testing.T) {
	before := runtime.NumGoroutine()
	data := randColumn(4000, 32, 3)
	ix, err := Build(data, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ix.Serve(ServerConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ranges := make([]Range, 32)
	for i := range ranges {
		lo := uint32(i % 24)
		ranges[i] = Range{Lo: lo, Hi: lo + 7}
	}
	out := srv.QueryBatch(context.Background(), ranges)
	for i, sr := range out {
		if sr.Err != nil {
			t.Fatalf("range %d: %v", i, sr.Err)
		}
		want, _, err := ix.Query(ranges[i].Lo, ranges[i].Hi)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(sr.Result.Rows(), want.Rows()) {
			t.Fatalf("served answer %d differs from direct query", i)
		}
		if sr.BatchSize < 1 || sr.Trigger == "" {
			t.Fatalf("answer %d missing serving metadata: %+v", i, sr)
		}
	}
	if st := srv.Stats(); st.Batches >= uint64(len(ranges)) {
		t.Fatalf("%d batches for %d concurrent queries: no batching", st.Batches, len(ranges))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	assertNoLeaks(t, before)
}

// TestServeDeadlinePropagation: a request whose deadline budget is already
// hopeless is rejected at admission without waiting, and a tight-but-viable
// budget forces an immediate deadline flush instead of waiting out MaxWait.
func TestServeDeadlinePropagation(t *testing.T) {
	data := randColumn(2000, 32, 5)
	ix, err := BuildSharded(data, 32, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// MaxWait is deliberately enormous: only the deadline triggers can
	// answer these requests promptly.
	srv, err := ix.Serve(ServerConfig{
		MaxBatch: 1024, MaxWait: 30 * time.Second,
		FlushSlack: 50 * time.Millisecond, MinBudget: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hopeless budget: rejected immediately, not enqueued.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	start := time.Now()
	_, qerr := srv.Query(ctx, 0, 7)
	cancel()
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("hopeless-budget query err = %v, want DeadlineExceeded", qerr)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("hopeless-budget rejection took %v, want immediate", el)
	}
	if st := srv.Stats(); st.Expired != 1 || st.Admitted != 0 {
		t.Fatalf("expired=%d admitted=%d, want 1/0", st.Expired, st.Admitted)
	}

	// Viable but tight: the batch must flush on the deadline trigger and
	// answer far sooner than the 30s MaxWait.
	ctx, cancel = context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start = time.Now()
	res, qerr := srv.Query(ctx, 0, 7)
	if qerr != nil {
		t.Fatalf("tight-budget query: %v", qerr)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("tight-budget query took %v; deadline flush did not fire", el)
	}
	if res.Trigger != "deadline" {
		t.Fatalf("tight-budget query served by %q flush, want deadline", res.Trigger)
	}
	if st := srv.Stats(); st.FlushDeadline == 0 {
		t.Fatalf("no deadline flushes recorded: %+v", st)
	}
}

// TestQueryExecCancelDuringBackoff: cancelling the context while the
// sharded retry layer is sleeping out a long backoff must return promptly
// with the context's error — backoff waits are interruptible.
func TestQueryExecCancelDuringBackoff(t *testing.T) {
	// Every block transiently fails far more times than the retry budget,
	// so each attempt fails and the executor spends its time in backoff.
	data := randColumn(4000, 32, 9)
	chaos, err := BuildSharded(data, 32, ShardOptions{Shards: 2, Faults: &FaultConfig{Seed: 1, TransientPer10k: 10000, TransientCount: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	chaos.ArmFaults()
	defer chaos.DisarmFaults()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, _, qerr := chaos.QueryExec(ctx, 0, 7, QueryOptions{
		Retry: RetryPolicy{MaxAttempts: 10, Backoff: 30 * time.Second, MaxBackoff: 30 * time.Second},
	})
	elapsed := time.Since(start)
	if !errors.Is(qerr, context.Canceled) {
		t.Fatalf("cancelled QueryExec err = %v, want context.Canceled", qerr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled QueryExec returned after %v; backoff wait is not interruptible", elapsed)
	}
}

// TestServeQueryBatchSharesScan: one client-side QueryBatch lands its
// members in shared batches, so SharedSaved shows up in the server stats.
func TestServeQueryBatchSharesScan(t *testing.T) {
	data := randColumn(6000, 64, 11)
	ix, err := BuildSharded(data, 64, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ix.Serve(ServerConfig{MaxBatch: 16, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Heavily overlapping ranges: the shared-scan planner should save reads.
	ranges := make([]Range, 48)
	for i := range ranges {
		lo := uint32(i % 6)
		ranges[i] = Range{Lo: lo, Hi: lo + 40}
	}
	out := srv.QueryBatch(context.Background(), ranges)
	for i, sr := range out {
		if sr.Err != nil {
			t.Fatalf("range %d: %v", i, sr.Err)
		}
	}
	if st := srv.Stats(); st.SharedSaved == 0 {
		t.Fatalf("overlapping batch saved no shared reads: %+v", st)
	}
}
