package secidx

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
)

// Serialization of the static index. The on-wire format stores the build
// options, the hash seed and the bit-packed column (⌈lg σ⌉ bits per key),
// protected by an FNV-64 checksum; Load rebuilds the structure
// deterministically (the same seed reproduces the same hash functions, so
// approximate results from an index loaded elsewhere still intersect with
// its siblings). The file is therefore within a constant of the column's
// raw size, independent of the index's in-memory footprint.

const (
	magic         = "secidx01"
	formatVersion = 1
)

// WriteTo serialises the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	h := fnv.New64a()
	out := io.MultiWriter(bw, h)

	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		n, err := out.Write(buf[:])
		written += int64(n)
		return err
	}
	if n, err := out.Write([]byte(magic)); err != nil {
		return written + int64(n), err
	}
	written += int64(len(magic))
	n64 := uint64(ix.Len())
	sigma := uint64(ix.Sigma())
	for _, v := range []uint64{
		formatVersion, n64, sigma,
		uint64(ix.opts.BlockBits), uint64(ix.opts.MemBits),
		uint64(ix.opts.Branching), uint64(ix.opts.Stride), uint64(ix.opts.Seed),
	} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	// Bit-packed column, flushed in 64-bit words.
	width := max(1, bits.Len64(sigma-1))
	var acc uint64
	accBits := 0
	flush := func() error {
		if err := put(acc); err != nil {
			return err
		}
		acc, accBits = 0, 0
		return nil
	}
	for _, key := range ix.column {
		acc |= uint64(key) << uint(accBits)
		accBits += width
		if accBits > 64-width {
			if err := flush(); err != nil {
				return written, err
			}
		}
	}
	if accBits > 0 {
		if err := flush(); err != nil {
			return written, err
		}
	}
	// Checksum trailer (not itself checksummed).
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h.Sum64())
	n, err := bw.Write(buf[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// Load reads an index serialised by WriteTo and rebuilds it.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	h := fnv.New64a()
	in := io.TeeReader(br, h)

	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(in, hdr); err != nil {
		return nil, fmt.Errorf("secidx: load header: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("secidx: bad magic %q", hdr)
	}
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(in, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	var fields [8]uint64
	for i := range fields {
		v, err := get()
		if err != nil {
			return nil, fmt.Errorf("secidx: load field %d: %w", i, err)
		}
		fields[i] = v
	}
	if fields[0] != formatVersion {
		return nil, fmt.Errorf("secidx: unsupported format version %d", fields[0])
	}
	n, sigma := fields[1], fields[2]
	if sigma == 0 || n > 1<<40 {
		return nil, fmt.Errorf("secidx: implausible header (n=%d, sigma=%d)", n, sigma)
	}
	opts := Options{
		BlockBits: int(fields[3]), MemBits: int(fields[4]),
		Branching: int(fields[5]), Stride: int(fields[6]), Seed: int64(fields[7]),
	}
	width := max(1, bits.Len64(sigma-1))
	perWord := 64 / width
	col := make([]uint32, 0, n)
	mask := uint64(1)<<uint(width) - 1
	for uint64(len(col)) < n {
		word, err := get()
		if err != nil {
			return nil, fmt.Errorf("secidx: load column: %w", err)
		}
		for k := 0; k < perWord && uint64(len(col)) < n; k++ {
			v := word & mask
			if v >= sigma {
				return nil, fmt.Errorf("secidx: corrupt column (key %d >= sigma %d)", v, sigma)
			}
			col = append(col, uint32(v))
			word >>= uint(width)
		}
	}
	want := h.Sum64()
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("secidx: load checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint64(buf[:]); got != want {
		return nil, fmt.Errorf("secidx: checksum mismatch (file %x, computed %x)", got, want)
	}
	return Build(col, int(sigma), opts)
}
