package secidx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/bits"
)

// ErrCorrupt is wrapped by every Load error caused by the input bytes —
// truncation, bad magic, implausible header fields, out-of-range keys or a
// checksum mismatch — as opposed to I/O errors from the reader itself.
// Detect it with errors.Is.
var ErrCorrupt = errors.New("secidx: corrupt index data")

// Serialization of the static index. The on-wire format stores the build
// options, the hash seed and the bit-packed column (⌈lg σ⌉ bits per key),
// protected by an FNV-64 checksum; Load rebuilds the structure
// deterministically (the same seed reproduces the same hash functions, so
// approximate results from an index loaded elsewhere still intersect with
// its siblings). The file is therefore within a constant of the column's
// raw size, independent of the index's in-memory footprint.

const (
	magic         = "secidx01"
	formatVersion = 1
)

// countingWriter counts the bytes its underlying writer accepted. It sits
// beneath the buffering and hashing layers of WriteTo so the io.WriterTo
// contract — n is the number of bytes written to w, exactly — holds even
// when w fails mid-write: bytes sitting in a bufio buffer or consumed by
// the checksum never inflate the count.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serialises the index. It implements io.WriterTo: the returned
// count is the number of bytes w actually accepted, on success and on error.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if ix.column == nil {
		// An index reopened from a v2 file does not retain its column; the
		// v1 format is rebuilt from the column, so there is nothing to write.
		return 0, fmt.Errorf("secidx: index was reopened from a file and retains no column; use WriteFile")
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	h := fnv.New64a()
	out := io.MultiWriter(bw, h)

	put := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		_, err := out.Write(buf[:])
		return err
	}
	if _, err := out.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	n64 := uint64(ix.Len())
	sigma := uint64(ix.Sigma())
	for _, v := range []uint64{
		formatVersion, n64, sigma,
		uint64(ix.opts.BlockBits), uint64(ix.opts.MemBits),
		uint64(ix.opts.Branching), uint64(ix.opts.Stride), uint64(ix.opts.Seed),
	} {
		if err := put(v); err != nil {
			return cw.n, err
		}
	}
	// Bit-packed column, flushed in 64-bit words.
	width := max(1, bits.Len64(sigma-1))
	var acc uint64
	accBits := 0
	flush := func() error {
		if err := put(acc); err != nil {
			return err
		}
		acc, accBits = 0, 0
		return nil
	}
	for _, key := range ix.column {
		acc |= uint64(key) << uint(accBits)
		accBits += width
		if accBits > 64-width {
			if err := flush(); err != nil {
				return cw.n, err
			}
		}
	}
	if accBits > 0 {
		if err := flush(); err != nil {
			return cw.n, err
		}
	}
	// Checksum trailer (not itself checksummed).
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h.Sum64())
	if _, err := bw.Write(buf[:]); err != nil {
		return cw.n, err
	}
	err := bw.Flush()
	return cw.n, err
}

// Load-time caps on header fields. The serialised header is untrusted input
// until its checksum verifies — and the checksum is integrity, not
// authenticity — so every field that sizes an allocation or drives a loop is
// bounded before it is used.
const (
	// maxLoadRows bounds the declared row count.
	maxLoadRows = 1 << 40
	// maxLoadSigma bounds the declared alphabet: the rebuild allocates
	// O(sigma) position lists, so sigma must not be attacker-sized.
	maxLoadSigma = 1 << 22
	// maxLoadParam bounds the tree parameters (branching, stride) and the
	// device parameters far above any useful value.
	maxLoadParam = 1 << 30
	// loadChunkRows caps the column slice's up-front capacity: the slice
	// grows with the words actually read, so a hostile row count in the
	// header cannot allocate more than a constant factor of the real input.
	loadChunkRows = 1 << 16
)

// corruptf reports malformed input, wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Load reads an index serialised by WriteTo and rebuilds it. Input is
// untrusted: truncated, oversized or bit-flipped files fail with an error
// wrapping ErrCorrupt, never a panic, and allocations are bounded by the
// bytes actually read rather than by header-declared sizes.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	h := fnv.New64a()
	in := io.TeeReader(br, h)

	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(in, hdr); err != nil {
		return nil, corruptf("load header: %v", err)
	}
	if string(hdr) != magic {
		return nil, corruptf("bad magic %q", hdr)
	}
	get := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(in, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	var fields [8]uint64
	for i := range fields {
		v, err := get()
		if err != nil {
			return nil, corruptf("load field %d: %v", i, err)
		}
		fields[i] = v
	}
	if fields[0] != formatVersion {
		return nil, corruptf("unsupported format version %d", fields[0])
	}
	n, sigma := fields[1], fields[2]
	if sigma == 0 || sigma > maxLoadSigma || n > maxLoadRows {
		return nil, corruptf("implausible header (n=%d, sigma=%d)", n, sigma)
	}
	for i := 3; i <= 6; i++ {
		if fields[i] > maxLoadParam {
			return nil, corruptf("implausible option field %d (%d)", i, fields[i])
		}
	}
	opts := Options{
		BlockBits: int(fields[3]), MemBits: int(fields[4]),
		Branching: int(fields[5]), Stride: int(fields[6]), Seed: int64(fields[7]),
	}
	width := max(1, bits.Len64(sigma-1))
	perWord := 64 / width
	// Start small regardless of the declared n: append growth tracks the
	// words actually read, so a truncated or hostile file stops allocating
	// when its bytes run out.
	col := make([]uint32, 0, min(n, loadChunkRows))
	mask := uint64(1)<<uint(width) - 1
	for uint64(len(col)) < n {
		word, err := get()
		if err != nil {
			return nil, corruptf("load column: %v", err)
		}
		for k := 0; k < perWord && uint64(len(col)) < n; k++ {
			v := word & mask
			if v >= sigma {
				return nil, corruptf("corrupt column (key %d >= sigma %d)", v, sigma)
			}
			col = append(col, uint32(v))
			word >>= uint(width)
		}
	}
	want := h.Sum64()
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, corruptf("load checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint64(buf[:]); got != want {
		return nil, corruptf("checksum mismatch (file %x, computed %x)", got, want)
	}
	ix, err := Build(col, int(sigma), opts)
	if err != nil {
		// The checksum passed, so the bytes faithfully carry what WriteTo
		// wrote — but the options can still be unbuildable (WriteTo never
		// produces them, so the file was crafted).
		return nil, corruptf("rebuild: %v", err)
	}
	return ix, nil
}
