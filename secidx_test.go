package secidx

import (
	"math/rand"
	"testing"
)

func randColumn(n, sigma int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]uint32, n)
	for i := range x {
		x[i] = uint32(rng.Intn(sigma))
	}
	return x
}

func bruteRange(x []uint32, lo, hi uint32) []int64 {
	var out []int64
	for i, v := range x {
		if v >= lo && v <= hi {
			out = append(out, int64(i))
		}
	}
	return out
}

func TestBuildAndQuery(t *testing.T) {
	x := randColumn(5000, 64, 1)
	ix, err := Build(x, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5000 || ix.Sigma() != 64 {
		t.Fatalf("Len/Sigma = %d/%d", ix.Len(), ix.Sigma())
	}
	if ix.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
	res, stats, err := ix.Query(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteRange(x, 10, 20)
	if res.Card() != int64(len(want)) {
		t.Fatalf("card %d, want %d", res.Card(), len(want))
	}
	rows := res.Rows()
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("row %d = %d, want %d", i, rows[i], want[i])
		}
	}
	if stats.Reads == 0 {
		t.Fatal("query charged no I/Os")
	}
	if !res.Contains(want[0]) || res.Contains(int64(-1)) {
		t.Fatal("Contains wrong")
	}
}

func TestResultAlgebra(t *testing.T) {
	x := randColumn(3000, 32, 2)
	ix, err := Build(x, 32, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := ix.Query(0, 15)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ix.Query(8, 23)
	if err != nil {
		t.Fatal(err)
	}
	in, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(bruteRange(x, 8, 15))) != in.Card() {
		t.Fatalf("intersect card %d, want %d", in.Card(), len(bruteRange(x, 8, 15)))
	}
	un, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(bruteRange(x, 0, 23))) != un.Card() {
		t.Fatalf("union card %d, want %d", un.Card(), len(bruteRange(x, 0, 23)))
	}
}

func TestApproxQueryAPI(t *testing.T) {
	x := randColumn(1<<14, 256, 3)
	ix, err := Build(x, 256, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := ix.ApproxQuery(30, 33, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range bruteRange(x, 30, 33) {
		if !res.Contains(i) {
			t.Fatalf("false negative at %d", i)
		}
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != res.CandidateCount() {
		t.Fatalf("Rows %d vs CandidateCount %d", len(rows), res.CandidateCount())
	}
}

func TestIntersectApproxAcrossColumns(t *testing.T) {
	n := 1 << 13
	colA := randColumn(n, 64, 4)
	colB := randColumn(n, 64, 5)
	ixA, err := Build(colA, 64, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ixB, err := Build(colB, 64, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ra, _, err := ixA.ApproxQuery(0, 15, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := ixB.ApproxQuery(16, 31, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	both, err := IntersectApprox(ra, rb)
	if err != nil {
		t.Fatal(err)
	}
	inB := map[int64]bool{}
	for _, i := range bruteRange(colB, 16, 31) {
		inB[i] = true
	}
	for _, i := range bruteRange(colA, 0, 15) {
		if inB[i] && !both.Contains(i) {
			t.Fatalf("intersection misses true match %d", i)
		}
	}
}

func TestAppendIndexAPI(t *testing.T) {
	for _, buffered := range []bool{false, true} {
		x := randColumn(500, 16, 6)
		ix, err := BuildAppend(x, 16, Options{Buffered: buffered})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 2000; i++ {
			ch := uint32(rng.Intn(16))
			if _, err := ix.Append(ch); err != nil {
				t.Fatal(err)
			}
			x = append(x, ch)
		}
		res, _, err := ix.Query(4, 9)
		if err != nil {
			t.Fatal(err)
		}
		if res.Card() != int64(len(bruteRange(x, 4, 9))) {
			t.Fatalf("buffered=%v: card %d, want %d", buffered, res.Card(), len(bruteRange(x, 4, 9)))
		}
	}
}

func TestDynamicIndexAPI(t *testing.T) {
	x := randColumn(1000, 16, 8)
	ix, err := BuildDynamic(x, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const gone = uint32(1 << 30)
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			j := rng.Int63n(int64(len(x)))
			ix.Delete(j)
			x[j] = gone
		case 1:
			ch := uint32(rng.Intn(16))
			ix.Append(ch)
			x = append(x, ch)
		default:
			j := rng.Int63n(int64(len(x)))
			if x[j] == gone {
				continue // deleted rows stay deleted
			}
			ch := uint32(rng.Intn(16))
			ix.Change(j, ch)
			x[j] = ch
		}
	}
	res, _, err := ix.Query(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, v := range x {
		if v <= 7 {
			want++
		}
	}
	if res.Card() != want {
		t.Fatalf("card %d, want %d", res.Card(), want)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0, Options{}); err == nil {
		t.Fatal("sigma=0 accepted")
	}
	if _, err := Build([]uint32{5}, 4, Options{}); err == nil {
		t.Fatal("out-of-alphabet value accepted")
	}
	if _, err := BuildAppend(nil, 0, Options{}); err == nil {
		t.Fatal("append sigma=0 accepted")
	}
	if _, err := BuildDynamic(nil, 0, Options{}); err == nil {
		t.Fatal("dynamic sigma=0 accepted")
	}
}

func TestDynamicLivePositions(t *testing.T) {
	x := randColumn(200, 8, 21)
	ix, err := BuildDynamic(x, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{5, 50, 100} {
		if _, err := ix.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if ix.LiveLen() != 197 {
		t.Fatalf("LiveLen = %d", ix.LiveLen())
	}
	// Raw 60 has 2 deletions before it.
	pos, live, err := ix.RawToLive(60)
	if err != nil || !live || pos != 58 {
		t.Fatalf("RawToLive(60) = %d,%v,%v", pos, live, err)
	}
	_, live, err = ix.RawToLive(50)
	if err != nil || live {
		t.Fatalf("RawToLive(50) live=%v err=%v", live, err)
	}
	raw, err := ix.LiveToRaw(58)
	if err != nil || raw != 60 {
		t.Fatalf("LiveToRaw(58) = %d, %v", raw, err)
	}
	// Deleted rows cannot be changed back.
	if _, err := ix.Change(50, 1); err == nil {
		t.Fatal("change of deleted row accepted")
	}
}
