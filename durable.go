package secidx

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/container"
	"repro/internal/index"
	"repro/internal/wal"
)

// Crash-consistent durability. OpenFile with OpenOptions.WAL reopens an
// append or dynamic container *writable*: every update is appended to a
// write-ahead log before it is applied, the base container is atomically
// rewritten (checkpoint) when the log grows past a threshold or the handle
// closes, and a reopen after a crash replays the log suffix beyond the
// base's watermark. The invariants the crash-injection harness pins:
//
//   - Atomicity: after a crash at any byte of the write history, reopening
//     recovers the index to exactly some prefix of the acknowledged
//     operations (plus at most the single in-flight one) — never a torn
//     state, never an interior gap.
//   - Durability: every operation acknowledged at or before a sync barrier
//     (per the SyncPolicy) survives.
//   - Recovery either succeeds or reports ErrCorrupt for genuine mid-log
//     damage; it never panics and never silently drops interior records.

// SyncPolicy selects when the write-ahead log makes acknowledged operations
// durable.
type SyncPolicy int

const (
	// SyncEveryOp syncs the log after every operation: an acknowledged
	// operation is durable. The safest and slowest policy.
	SyncEveryOp SyncPolicy = iota
	// SyncGrouped group-commits: the log is synced when the unsynced window
	// reaches GroupBytes bytes or GroupOps operations, whichever first. An
	// acknowledged operation may be lost to a crash until the next barrier.
	SyncGrouped
	// SyncInterval syncs when Interval has elapsed since the last sync,
	// checked at each operation.
	SyncInterval
)

// WALOptions configures the durability layer of OpenFile. The zero value of
// Path places the log next to the container as <path>.wal.
type WALOptions struct {
	// Path is the log file's path (default: container path + ".wal").
	Path string
	// Policy selects the sync policy (default SyncEveryOp).
	Policy SyncPolicy
	// GroupBytes and GroupOps bound the unsynced window under SyncGrouped
	// (both zero: GroupOps defaults to 16).
	GroupBytes int
	GroupOps   int
	// Interval is the SyncInterval period (default 100ms).
	Interval time.Duration
	// CheckpointBytes rewrites the base container once the log exceeds this
	// many bytes (0: 4 MiB default; negative: no byte trigger — the base is
	// rewritten only on Close or an op-count trigger).
	CheckpointBytes int64
	// CheckpointOps rewrites the base container every this many applied
	// operations (0: no op-count trigger).
	CheckpointOps int

	// fsys overrides the filesystem — the crash-injection harness's hook.
	// nil means the real filesystem.
	fsys wal.FS
}

// defaultCheckpointBytes is the log-size checkpoint threshold when
// WALOptions.CheckpointBytes is zero.
const defaultCheckpointBytes = 4 << 20

// walPolicy maps the public sync policy to the log writer's. group selects
// the group-commit stage of a Concurrent open: SyncEveryOp then becomes
// manual sync — appends never sync inline, the commit stage issues one sync
// per batch of waiting writers — without weakening the contract, because an
// operation is not acknowledged until the shared durable watermark covers it.
func (wo *WALOptions) walPolicy(group bool) wal.Policy {
	switch wo.Policy {
	case SyncGrouped:
		gb, gops := wo.GroupBytes, wo.GroupOps
		if gb == 0 && gops == 0 {
			gops = 16
		}
		return wal.Policy{Mode: wal.SyncWindow, WindowBytes: gb, WindowOps: gops}
	case SyncInterval:
		iv := wo.Interval
		if iv == 0 {
			iv = 100 * time.Millisecond
		}
		return wal.Policy{Mode: wal.SyncTimed, Interval: iv}
	}
	if group {
		return wal.Policy{Mode: wal.SyncManual}
	}
	return wal.Policy{Mode: wal.SyncEveryRecord}
}

// Log record opcodes. A record is opcode + operands, varint-packed.
const (
	opAppend = 1 // operand: ch
	opChange = 2 // operands: i, ch
	opDelete = 3 // operand: i
)

func encodeOpAppend(ch uint32) []byte {
	var e container.Encoder
	e.U(opAppend)
	e.U(uint64(ch))
	return e.Bytes()
}

func encodeOpChange(i int64, ch uint32) []byte {
	var e container.Encoder
	e.U(opChange)
	e.U(uint64(i))
	e.U(uint64(ch))
	return e.Bytes()
}

func encodeOpDelete(i int64) []byte {
	var e container.Encoder
	e.U(opDelete)
	e.U(uint64(i))
	return e.Bytes()
}

// walOp is one decoded log record.
type walOp struct {
	op uint64
	i  int64
	ch uint32
}

func decodeOp(payload []byte) (walOp, error) {
	dec := container.NewDecoder(payload)
	var o walOp
	o.op = dec.UN(opDelete)
	switch o.op {
	case opAppend:
		o.ch = uint32(dec.UN(container.MaxSigma - 1))
	case opChange:
		o.i = int64(dec.UN(container.MaxRows))
		o.ch = uint32(dec.UN(container.MaxSigma - 1))
	case opDelete:
		o.i = int64(dec.UN(container.MaxRows))
	default:
		if dec.Err() == nil {
			return o, fmt.Errorf("invalid opcode %d", o.op)
		}
	}
	if err := dec.Finish(); err != nil {
		return o, err
	}
	return o, nil
}

// ErrClosed reports an operation on a handle after Close. It is a typed,
// stable answer: a racing Close never panics an in-flight operation, it
// serializes before or after it, and everything later gets ErrClosed.
var ErrClosed = errors.New("secidx: handle is closed")

// durable is the durability state behind a writable handle: the live log
// writer, the watermark the base container reflects, and the checkpoint
// thresholds. Errors are sticky — after a failed log write, apply, or
// checkpoint, the handle's offset bookkeeping can no longer be trusted, so
// every later operation is refused; the data on disk stays recoverable.
//
// All mutable state is guarded by mu, so concurrent writers on one handle
// serialize through it (validate → log → apply → publish). In group-commit
// mode the sync policy is manual: an operation releases mu after applying
// and then waits for the shared durable watermark; the first waiter to take
// mu syncs the log once for every record appended so far, so a convoy of
// writers shares one sync (see waitDurable).
type durable struct {
	fsys     wal.FS
	dir      string
	basePath string
	walPath  string
	kind     uint64
	pol      wal.Policy
	group    bool // group-commit mode: ack at the durable watermark

	ckptBytes int64
	ckptOps   int

	mu       sync.Mutex
	closed   bool
	w        *wal.Writer
	ckptSeq  uint64 // watermark: seq the base container on disk reflects
	opsSince int    // ops applied since the last checkpoint
	// emit writes the base container's sections at watermark seq.
	emit func(cw *container.Writer, seq uint64) error
	err  error
}

func (du *durable) fail(err error) error {
	if du.err == nil {
		du.err = err
	}
	return err
}

// log appends one operation record and applies the sync policy. On return
// the operation is acknowledged under the policy's durability contract; an
// error means it was not acknowledged and the handle is broken. Callers
// hold mu.
func (du *durable) log(payload []byte) error {
	if du.err != nil {
		return du.err
	}
	if _, err := du.w.Append(payload); err != nil {
		return du.fail(err)
	}
	return nil
}

// sync is an explicit durability barrier over the log.
func (du *durable) sync() error {
	du.mu.Lock()
	defer du.mu.Unlock()
	return du.syncLocked()
}

func (du *durable) syncLocked() error {
	if du.err != nil {
		return du.err
	}
	if du.closed {
		return ErrClosed
	}
	if err := du.w.Sync(); err != nil {
		return du.fail(err)
	}
	return nil
}

// waitDurable blocks until the durable watermark covers seq — the group
// commit stage. The first writer to take mu syncs the log once, covering
// its own record and every record appended behind it; the writers convoyed
// on mu then observe the advanced watermark and return without syncing.
// This is what makes syncs per op measurably below one under concurrent
// load while keeping SyncEveryOp's contract: no operation is acknowledged
// before it is durable.
func (du *durable) waitDurable(seq uint64) error {
	du.mu.Lock()
	defer du.mu.Unlock()
	if du.durableSeqLocked() >= seq {
		return nil
	}
	if du.err != nil {
		return du.err
	}
	if du.closed {
		// close syncs everything it can; an undurable record here means the
		// close path failed and the sticky error above reported it.
		return ErrClosed
	}
	if err := du.w.Sync(); err != nil {
		return du.fail(err)
	}
	return nil
}

// maybeCheckpoint rewrites the base container when the log has grown past
// the configured thresholds. A checkpoint failure does not un-acknowledge
// the operation that triggered it — it is logged and applied — but the
// handle goes sticky-broken so no further operations are accepted. Callers
// hold mu.
func (du *durable) maybeCheckpoint() {
	if du.err != nil || du.opsSince == 0 {
		return
	}
	if (du.ckptBytes > 0 && du.w.Written() >= du.ckptBytes) ||
		(du.ckptOps > 0 && du.opsSince >= du.ckptOps) {
		du.checkpointLocked()
	}
}

// checkpoint makes the base container reflect every logged operation and
// resets the log. The ordering is what makes a crash at any point safe:
// sync the log (nothing acknowledged may outrun what recovery can see),
// atomically rewrite the base at the log's last sequence (temp file, rename,
// directory sync), then swing a fresh log starting at that sequence into
// place the same way. A crash between the two rewrites leaves a new base
// with a stale log, which recovery detects by the watermark and discards.
func (du *durable) checkpoint() error {
	du.mu.Lock()
	defer du.mu.Unlock()
	if du.closed {
		return ErrClosed
	}
	return du.checkpointLocked()
}

func (du *durable) checkpointLocked() error {
	if du.err != nil {
		return du.err
	}
	if err := du.w.Sync(); err != nil {
		return du.fail(err)
	}
	seq := du.w.Seq()
	if err := writeContainerFS(du.fsys, du.basePath, du.kind, func(cw *container.Writer) error {
		return du.emit(cw, seq)
	}); err != nil {
		return du.fail(err)
	}
	if err := du.w.Close(); err != nil {
		return du.fail(err)
	}
	w, err := du.rotateWAL(seq)
	if err != nil {
		return du.fail(err)
	}
	du.w = w
	du.ckptSeq = seq
	du.opsSince = 0
	return nil
}

// rotateWAL installs a fresh log starting at startSeq via temp file and
// rename — never by truncating in place, which could mix old and new bytes
// if interrupted. The returned writer's handle survives the rename (the
// name moves, the object does not).
func (du *durable) rotateWAL(startSeq uint64) (*wal.Writer, error) {
	tmp := du.walPath + ".tmp"
	f, err := du.fsys.Create(tmp)
	if err != nil {
		return nil, err
	}
	w, err := wal.Create(f, du.kind, startSeq, du.pol)
	if err != nil {
		f.Close()
		du.fsys.Remove(tmp)
		return nil, err
	}
	if err := du.fsys.Rename(tmp, du.walPath); err != nil {
		f.Close()
		du.fsys.Remove(tmp)
		return nil, err
	}
	if err := du.fsys.SyncDir(du.dir); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// close checkpoints outstanding operations and closes the log. After a clean
// close the base container alone carries the index and the log is empty.
// close serializes against in-flight operations through mu: whoever holds mu
// finishes first; everything after gets ErrClosed. Closing twice is a no-op.
func (du *durable) close() error {
	du.mu.Lock()
	defer du.mu.Unlock()
	if du.closed {
		return nil
	}
	du.closed = true
	var first error
	if du.err == nil && du.opsSince > 0 {
		first = du.checkpointLocked()
	}
	if du.w != nil {
		err := du.w.Close()
		du.w = nil
		if first == nil {
			first = err
		}
	}
	return first
}

// lastSeq returns the sequence number of the last acknowledged operation.
func (du *durable) lastSeq() uint64 {
	du.mu.Lock()
	defer du.mu.Unlock()
	if du.w == nil {
		return du.ckptSeq
	}
	return du.w.Seq()
}

// durableSeq returns the last sequence number guaranteed to survive a crash.
func (du *durable) durableSeq() uint64 {
	du.mu.Lock()
	defer du.mu.Unlock()
	return du.durableSeqLocked()
}

func (du *durable) durableSeqLocked() uint64 {
	if du.w == nil {
		return du.ckptSeq
	}
	if s := du.w.SyncedSeq(); s > du.ckptSeq {
		return s
	}
	return du.ckptSeq
}

// durableApply runs one update under the log-before-apply discipline:
// pre-validate (only operations the index will accept may be logged — a
// record whose replay fails would poison recovery), log, apply, publish the
// new epoch (concurrent handles), then checkpoint if due. An apply failure
// after a successful log breaks the handle: the in-memory state may be
// part-mutated, and recovery from the (still consistent) on-disk state is
// the only way forward.
//
// Concurrent writers serialize through mu up to publication; in group-commit
// mode the durability wait happens after mu is released, so the next writer
// appends its record while this one waits for the shared sync (one fsync per
// convoy, not per op).
func durableApply(du *durable, validate func() error, payload func() []byte,
	apply func() (index.QueryStats, error), publish func(seq uint64) error) (Stats, error) {
	du.mu.Lock()
	if du.closed {
		du.mu.Unlock()
		return Stats{}, ErrClosed
	}
	if du.err != nil {
		err := du.err
		du.mu.Unlock()
		return Stats{}, err
	}
	if err := validate(); err != nil {
		du.mu.Unlock()
		return Stats{}, err
	}
	if err := du.log(payload()); err != nil {
		du.mu.Unlock()
		return Stats{}, err
	}
	seq := du.w.Seq()
	st, err := apply()
	if err != nil {
		du.fail(err)
		du.mu.Unlock()
		return fromQS(st), err
	}
	if publish != nil {
		if perr := publish(seq); perr != nil {
			du.fail(perr)
			du.mu.Unlock()
			return fromQS(st), perr
		}
	}
	du.opsSince++
	du.maybeCheckpoint()
	group := du.group
	du.mu.Unlock()
	if group {
		if werr := du.waitDurable(seq); werr != nil {
			return fromQS(st), werr
		}
	}
	return fromQS(st), nil
}

// openDurable recovers the durability state for a base container opened at
// watermark appliedSeq: scan the log, replay the suffix beyond the watermark
// through apply, and return a handle whose writer resumes at the log's valid
// end. A torn log tail (a crash mid-append) is truncated and overwritten;
// mid-log damage, a log/base kind mismatch, or a log that starts beyond the
// base's watermark (acknowledged operations missing) is ErrCorrupt.
func openDurable(wo *WALOptions, basePath string, kind uint64, appliedSeq uint64, group bool,
	apply func(walOp) error, emit func(cw *container.Writer, seq uint64) error) (*durable, error) {
	fsys := wo.fsys
	if fsys == nil {
		fsys = wal.OS
	}
	walPath := wo.Path
	if walPath == "" {
		walPath = basePath + ".wal"
	}
	du := &durable{
		fsys: fsys, dir: filepath.Dir(walPath), basePath: basePath, walPath: walPath,
		kind: kind, pol: wo.walPolicy(group), group: group && wo.Policy == SyncEveryOp,
		ckptBytes: wo.CheckpointBytes, ckptOps: wo.CheckpointOps,
		ckptSeq: appliedSeq, emit: emit,
	}
	if du.ckptBytes == 0 {
		du.ckptBytes = defaultCheckpointBytes
	} else if du.ckptBytes < 0 {
		du.ckptBytes = 0
	}

	data, err := fsys.ReadFile(walPath)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		data = nil
	}
	fresh := func() (*durable, error) {
		w, err := du.rotateWAL(appliedSeq)
		if err != nil {
			return nil, err
		}
		du.w = w
		return du, nil
	}
	if data == nil {
		// First durable open: no log yet.
		return fresh()
	}
	sr, serr := wal.Scan(data)
	if serr != nil {
		return nil, fmt.Errorf("%w: log %s: %v", ErrCorrupt, walPath, serr)
	}
	if !sr.HeaderOK {
		// The file is shorter than a log header — a crash during log
		// creation, before anything could have been acknowledged against it.
		return fresh()
	}
	if sr.Kind != kind {
		return nil, corruptf("log %s belongs to container kind %d, base is kind %d", walPath, sr.Kind, kind)
	}
	if sr.StartSeq > appliedSeq {
		return nil, corruptf("log %s starts at sequence %d but the base reflects only %d: acknowledged operations are missing", walPath, sr.StartSeq, appliedSeq)
	}
	last := sr.StartSeq
	for _, rec := range sr.Recs {
		last = rec.Seq
		if rec.Seq <= appliedSeq {
			continue // the base already reflects it
		}
		op, derr := decodeOp(rec.Payload)
		if derr != nil {
			return nil, corruptf("log %s record %d: %v", walPath, rec.Seq, derr)
		}
		if err := apply(op); err != nil {
			return nil, corruptf("log %s: replaying record %d: %v", walPath, rec.Seq, err)
		}
		du.opsSince++
	}
	if last < appliedSeq {
		// The base is newer than the whole log: a crash fell between the
		// checkpoint's base rewrite and its log rotation. The log is stale.
		return fresh()
	}
	f, err := fsys.OpenResume(walPath, sr.ValidLen)
	if err != nil {
		return nil, err
	}
	w, err := wal.Resume(f, kind, last, sr.ValidLen, du.pol)
	if err != nil {
		f.Close()
		return nil, err
	}
	du.w = w
	return du, nil
}
