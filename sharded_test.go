package secidx

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/index"
)

// TestShardedDifferential is the differential property test: on random
// columns and workloads, ShardedIndex answers — rows, cardinality, Contains —
// must be identical to a single unsharded Index, for every shard count.
func TestShardedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		n := 2000 + rng.Intn(8000)
		sigma := []int{16, 64, 256, 1000}[trial%4]
		x := randColumn(n, sigma, int64(100+trial))
		ref, err := Build(x, sigma, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 7, 16} {
			ix, err := BuildSharded(x, sigma, ShardOptions{
				Options: Options{Seed: 5},
				Shards:  shards,
			})
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if got := ix.Shards(); got != shards {
				t.Fatalf("built %d shards, want %d", got, shards)
			}
			for q := 0; q < 25; q++ {
				lo := uint32(rng.Intn(sigma))
				hi := lo + uint32(rng.Intn(sigma-int(lo)))
				want, _, err := ref.Query(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := ix.Query(lo, hi)
				if err != nil {
					t.Fatalf("shards=%d [%d,%d]: %v", shards, lo, hi, err)
				}
				assertSameResult(t, got, want, x, lo, hi, shards)
			}
		}
	}
}

func assertSameResult(t *testing.T, got, want *Result, x []uint32, lo, hi uint32, shards int) {
	t.Helper()
	if got.Card() != want.Card() {
		t.Fatalf("shards=%d [%d,%d]: card %d, unsharded %d", shards, lo, hi, got.Card(), want.Card())
	}
	// The gap encoding is canonical, so equality must hold bit for bit.
	if got.SizeBits() != want.SizeBits() {
		t.Fatalf("shards=%d [%d,%d]: %d encoded bits, unsharded %d", shards, lo, hi, got.SizeBits(), want.SizeBits())
	}
	gr, wr := got.Rows(), want.Rows()
	for i := range wr {
		if gr[i] != wr[i] {
			t.Fatalf("shards=%d [%d,%d]: row[%d] = %d, unsharded %d", shards, lo, hi, i, gr[i], wr[i])
		}
	}
	// Contains must agree on members and a sample of non-members.
	for i := 0; i < 20 && i < len(wr); i++ {
		if !got.Contains(wr[i]) {
			t.Fatalf("shards=%d [%d,%d]: Contains(%d) = false for a member", shards, lo, hi, wr[i])
		}
	}
	for i := int64(0); i < 50; i++ {
		p := (i * 997) % int64(len(x))
		if got.Contains(p) != want.Contains(p) {
			t.Fatalf("shards=%d [%d,%d]: Contains(%d) disagrees", shards, lo, hi, p)
		}
	}
}

// TestShardedFusedVsUnfusedOracle pins the whole fused pipeline end to end:
// the sharded answer (per-shard fused streaming queries, merged with row-id
// offsetting) must be bit-identical to the pre-streaming decode-then-union
// oracle on an unsharded index, including ranges dense enough to take the
// complement path.
func TestShardedFusedVsUnfusedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 3; trial++ {
		n := 1500 + rng.Intn(4000)
		sigma := []int{8, 128, 700}[trial]
		x := randColumn(n, sigma, int64(200+trial))
		ref, err := Build(x, sigma, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 5} {
			ix, err := BuildSharded(x, sigma, ShardOptions{Options: Options{Seed: 5}, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 20; q++ {
				lo := uint32(rng.Intn(sigma))
				hi := lo + uint32(rng.Intn(sigma-int(lo)))
				if q == 0 {
					lo, hi = 0, uint32(sigma-1) // densest possible: complement path
				}
				want, _, err := ref.ax.QueryUnfused(index.Range{Lo: lo, Hi: hi})
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := ix.Query(lo, hi)
				if err != nil {
					t.Fatalf("shards=%d [%d,%d]: %v", shards, lo, hi, err)
				}
				assertSameResult(t, got, &Result{bm: want}, x, lo, hi, shards)
			}
		}
	}
}

// TestShardedQueryBatch checks batch answers against singleton queries,
// including deduplication of repeated ranges.
func TestShardedQueryBatch(t *testing.T) {
	x := randColumn(12000, 128, 23)
	ix, err := BuildSharded(x, 128, ShardOptions{Shards: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ranges := []Range{{0, 7}, {100, 120}, {0, 7}, {64, 64}, {0, 127}, {100, 120}}
	results, _, err := ix.QueryBatch(ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ranges) {
		t.Fatalf("%d results for %d ranges", len(results), len(ranges))
	}
	for i, r := range ranges {
		want := bruteRange(x, r.Lo, r.Hi)
		if results[i].Card() != int64(len(want)) {
			t.Fatalf("range %d [%d,%d]: card %d, brute force %d", i, r.Lo, r.Hi, results[i].Card(), len(want))
		}
		rows := results[i].Rows()
		for j, p := range want {
			if rows[j] != p {
				t.Fatalf("range %d: row[%d] = %d, want %d", i, j, rows[j], p)
			}
		}
	}
	// Dedup: identical ranges share one underlying answer.
	if results[0].bm != results[2].bm || results[1].bm != results[5].bm {
		t.Fatal("duplicate ranges did not share their answer")
	}
	if results[0].bm == results[3].bm {
		t.Fatal("distinct ranges share an answer")
	}
}

// TestShardedQueryBatchStress hammers QueryBatch from many goroutines (run
// under -race in CI): the shards are immutable after Build and all merge
// state is per-batch, so concurrent batches must be safe and correct.
func TestShardedQueryBatchStress(t *testing.T) {
	x := randColumn(20000, 256, 29)
	ix, err := BuildSharded(x, 256, ShardOptions{
		Shards:      7,
		Workers:     4,
		CacheBlocks: 64, // cache on: its lock discipline is part of the test
	})
	if err != nil {
		t.Fatal(err)
	}
	goroutines := 8
	if testing.Short() {
		goroutines = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(31 + g)))
			for iter := 0; iter < 10; iter++ {
				batch := make([]Range, 6)
				for i := range batch {
					lo := uint32(rng.Intn(256))
					batch[i] = Range{Lo: lo, Hi: lo + uint32(rng.Intn(256-int(lo)))}
				}
				batch[3] = batch[0] // force a duplicate
				results, _, err := ix.QueryBatch(batch)
				if err != nil {
					errs <- err
					return
				}
				for i, r := range batch {
					want := bruteRange(x, r.Lo, r.Hi)
					if results[i].Card() != int64(len(want)) {
						errs <- errMismatch{}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestShardedCacheCorrectness: with the block cache enabled, query results
// are byte-identical to the uncached run and the device pays strictly fewer
// block reads on a repeated workload.
func TestShardedCacheCorrectness(t *testing.T) {
	x := randColumn(15000, 128, 37)
	batch := []Range{{0, 15}, {32, 47}, {0, 15}, {90, 127}, {32, 47}, {5, 5}}
	cold, err := BuildSharded(x, 128, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := BuildSharded(x, 128, ShardOptions{Shards: 4, CacheBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	cold.ResetDeviceStats()
	warm.ResetDeviceStats()
	// Two passes over the same workload: the second pass is where the cache
	// must pay off.
	for pass := 0; pass < 2; pass++ {
		rc, _, err := cold.QueryBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		rw, _, err := warm.QueryBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			if rc[i].Card() != rw[i].Card() || rc[i].SizeBits() != rw[i].SizeBits() {
				t.Fatalf("pass %d range %d: cached result differs from uncached", pass, i)
			}
			cr, wr := rc[i].Rows(), rw[i].Rows()
			for j := range cr {
				if cr[j] != wr[j] {
					t.Fatalf("pass %d range %d row %d: %d != %d", pass, i, j, cr[j], wr[j])
				}
			}
		}
	}
	cs, ws := cold.DeviceStats(), warm.DeviceStats()
	if ws.BlockReads >= cs.BlockReads {
		t.Fatalf("cache did not reduce block reads: %d cached vs %d uncached", ws.BlockReads, cs.BlockReads)
	}
	if ws.CacheHits == 0 {
		t.Fatal("no cache hits on a repeated workload")
	}
	if cs.CacheHits != 0 || cs.CacheMisses != 0 {
		t.Fatalf("uncached run reported cache traffic: %+v", cs)
	}
	if ws.CacheHits+ws.CacheMisses != cs.BlockReads {
		t.Fatalf("cache traffic %d+%d should equal uncached reads %d",
			ws.CacheHits, ws.CacheMisses, cs.BlockReads)
	}
}

// TestShardedEdgeCases covers degenerate shapes: more shards than rows,
// single-row columns, and empty batches.
func TestShardedEdgeCases(t *testing.T) {
	ix, err := BuildSharded([]uint32{3}, 8, ShardOptions{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Shards() != 1 {
		t.Fatalf("1-row column built %d shards", ix.Shards())
	}
	res, _, err := ix.Query(0, 7)
	if err != nil || res.Card() != 1 || !res.Contains(0) {
		t.Fatalf("1-row query: %v card=%d", err, res.Card())
	}
	results, _, err := ix.QueryBatch(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v len=%d", err, len(results))
	}
	if _, _, err := ix.Query(5, 99); err == nil {
		t.Fatal("out-of-alphabet range accepted")
	}
	if _, _, err := ix.QueryBatch([]Range{{2, 1}}); err == nil {
		t.Fatal("inverted range accepted")
	}
}
