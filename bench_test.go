// Benchmarks regenerating every experiment in DESIGN.md's per-experiment
// index (one per theorem / analytical claim of the paper), plus wall-clock
// micro-benchmarks of the core operations.
//
// The experiment benchmarks report their headline measurements through
// b.ReportMetric, so `go test -bench . -benchmem` prints, next to the usual
// ns/op, the I/O-model quantities the theorems bound (the deterministic
// primary metric — wall-clock numbers include GC noise, the I/O counts do
// not).
package secidx

import (
	"math/rand"
	"strconv"
	"testing"
	"time"

	"repro/internal/bitio"
	"repro/internal/cbitmap"
	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/experiments"
	"repro/internal/gamma"
	"repro/internal/index"
	"repro/internal/iomodel"
	"repro/internal/serve"
	"repro/internal/workload"
)

// benchExperiment runs one DESIGN.md experiment per benchmark iteration.
func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1SpaceVsSigma(b *testing.B)    { benchExperiment(b, experiments.E1SpaceVsSigma) }
func BenchmarkE2QueryVsRange(b *testing.B)    { benchExperiment(b, experiments.E2QueryVsRange) }
func BenchmarkE3EntropySweep(b *testing.B)    { benchExperiment(b, experiments.E3EntropySweep) }
func BenchmarkE4TradeOff(b *testing.B)        { benchExperiment(b, experiments.E4TradeOff) }
func BenchmarkE5ApproxEps(b *testing.B)       { benchExperiment(b, experiments.E5ApproxEps) }
func BenchmarkE6Append(b *testing.B)          { benchExperiment(b, experiments.E6Append) }
func BenchmarkE7PointIndex(b *testing.B)      { benchExperiment(b, experiments.E7PointIndex) }
func BenchmarkE8Dynamic(b *testing.B)         { benchExperiment(b, experiments.E8Dynamic) }
func BenchmarkE9RIDIntersection(b *testing.B) { benchExperiment(b, experiments.E9RIDIntersection) }
func BenchmarkE10OutputOptimality(b *testing.B) {
	benchExperiment(b, experiments.E10OutputOptimality)
}
func BenchmarkA1Stride(b *testing.B)         { benchExperiment(b, experiments.A1Stride) }
func BenchmarkA2Branching(b *testing.B)      { benchExperiment(b, experiments.A2Branching) }
func BenchmarkA3PointBranching(b *testing.B) { benchExperiment(b, experiments.A3PointBranching) }

// --- Wall-clock micro-benchmarks with I/O-model metrics attached. ---

func benchColumn(n, sigma int) workload.Column {
	return workload.Uniform(n, sigma, 1)
}

func BenchmarkBuildOptimal(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			col := benchColumn(n, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := iomodel.NewDisk(iomodel.Config{BlockBits: 8192})
				ix, err := core.BuildOptimalDefault(d, col)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(ix.SizeBits())/float64(n), "bits/char")
				}
			}
		})
	}
}

func BenchmarkQueryOptimal(b *testing.B) {
	for _, ell := range []int{1, 16, 128} {
		b.Run("ell="+strconv.Itoa(ell), func(b *testing.B) {
			n := 1 << 17
			col := benchColumn(n, 1024)
			d := iomodel.NewDisk(iomodel.Config{BlockBits: 8192})
			ix, err := core.BuildOptimalDefault(d, col)
			if err != nil {
				b.Fatal(err)
			}
			qs := workload.RandomRanges(64, 1024, ell, 7)
			var reads, bits, z float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				bm, st, err := ix.Query(index.Range{Lo: q.Lo, Hi: q.Hi})
				if err != nil {
					b.Fatal(err)
				}
				reads += float64(st.Reads)
				bits += float64(st.BitsRead)
				z += float64(bm.Card())
			}
			nIters := float64(b.N)
			b.ReportMetric(reads/nIters, "blockIO/op")
			bound := entropy.AnswerBound(int64(n), int64(z/nIters))
			if bound >= 1 {
				b.ReportMetric(bits/nIters/bound, "bits-vs-bound")
			}
		})
	}
}

func BenchmarkQueryPublicAPI(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(2))
	col := make([]uint32, n)
	for i := range col {
		col[i] = uint32(rng.Intn(512))
	}
	ix, err := Build(col, 512, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint32(rng.Intn(500))
		if _, _, err := ix.Query(lo, lo+8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedQuery sweeps the shard count on one column: per-query
// wall time plus the total and critical-path (max single device) block
// reads of the fan-out + offset-merge pipeline.
func BenchmarkShardedQuery(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(21))
	col := make([]uint32, n)
	for i := range col {
		col[i] = uint32(rng.Intn(512))
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run("shards="+strconv.Itoa(shards), func(b *testing.B) {
			ix, err := BuildSharded(col, 512, ShardOptions{Shards: shards, Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			ix.ResetDeviceStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := uint32(rng.Intn(500))
				if _, _, err := ix.Query(lo, lo+8); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ix.DeviceStats().BlockReads)/float64(b.N), "blockIO/op")
		})
	}
}

// BenchmarkShardedQueryBatch runs 32-query batches through the shared-scan
// batch planner. The original random batch (moderate overlap) is kept with
// and without the per-shard block cache; the overlap-zipf variants draw
// zipf-clustered ranges — the production shape where many concurrent queries
// hit the same hot key ranges — and pair the planner against a looped
// per-query baseline, so the blockIO/batch ratio between the two is the
// shared-scan win.
func BenchmarkShardedQueryBatch(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(22))
	col := make([]uint32, n)
	for i := range col {
		col[i] = uint32(rng.Intn(512))
	}
	batch := make([]Range, 32)
	for i := range batch {
		lo := uint32(rng.Intn(500))
		batch[i] = Range{Lo: lo, Hi: lo + 8}
	}
	batch[7], batch[19] = batch[0], batch[4] // hot repeats
	zrng := rand.New(rand.NewSource(24))
	zipf := rand.NewZipf(zrng, 1.4, 8, 495)
	zbatch := make([]Range, 32)
	for i := range zbatch {
		lo := uint32(zipf.Uint64())
		zbatch[i] = Range{Lo: lo, Hi: lo + 16}
	}
	for _, bc := range []struct {
		name   string
		batch  []Range
		cache  int
		looped bool
	}{
		{"cache=off", batch, 0, false},
		{"cache=128", batch, 128, false},
		{"overlap-zipf", zbatch, 0, false},
		{"overlap-zipf-looped", zbatch, 0, true},
		{"overlap-zipf-cache=128", zbatch, 128, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			ix, err := BuildSharded(col, 512, ShardOptions{Shards: 4, Workers: 4, CacheBlocks: bc.cache})
			if err != nil {
				b.Fatal(err)
			}
			ix.ResetDeviceStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if bc.looped {
					for _, r := range bc.batch {
						if _, _, err := ix.Query(r.Lo, r.Hi); err != nil {
							b.Fatal(err)
						}
					}
				} else if _, _, err := ix.QueryBatch(bc.batch); err != nil {
					b.Fatal(err)
				}
			}
			st := ix.DeviceStats()
			b.ReportMetric(float64(st.BlockReads)/float64(b.N), "blockIO/batch")
			if st.SharedSaved > 0 {
				b.ReportMetric(float64(st.SharedSaved)/float64(b.N), "sharedSaved/batch")
			}
			if tot := st.CacheHits + st.CacheMisses; tot > 0 {
				b.ReportMetric(100*float64(st.CacheHits)/float64(tot), "cache-hit-pct")
			}
		})
	}
}

// BenchmarkIndexQuery measures the end-to-end fused streaming query
// pipeline through the public API — exact, approximate, and sharded — with
// the pre-streaming decode-then-union shape as the baseline. Run with
// -benchmem: the allocs/op delta between exact and exact-unfused is the
// headline number for the fused pipeline; blockIO/op pins the I/O model cost
// unchanged.
func BenchmarkIndexQuery(b *testing.B) {
	n := 1 << 16
	rng := rand.New(rand.NewSource(23))
	col := make([]uint32, n)
	for i := range col {
		col[i] = uint32(rng.Intn(512))
	}
	queries := make([]uint32, 256)
	for i := range queries {
		queries[i] = uint32(rng.Intn(500))
	}

	b.Run("exact", func(b *testing.B) {
		ix, err := Build(col, 512, Options{})
		if err != nil {
			b.Fatal(err)
		}
		var reads int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := queries[i%len(queries)]
			_, st, err := ix.Query(lo, lo+8)
			if err != nil {
				b.Fatal(err)
			}
			reads += int64(st.Reads)
		}
		b.ReportMetric(float64(reads)/float64(b.N), "blockIO/op")
	})

	b.Run("exact-unfused", func(b *testing.B) {
		ix, err := Build(col, 512, Options{})
		if err != nil {
			b.Fatal(err)
		}
		var reads int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := queries[i%len(queries)]
			_, st, err := ix.ax.QueryUnfused(index.Range{Lo: lo, Hi: lo + 8})
			if err != nil {
				b.Fatal(err)
			}
			reads += int64(st.Reads)
		}
		b.ReportMetric(float64(reads)/float64(b.N), "blockIO/op")
	})

	b.Run("approx", func(b *testing.B) {
		ix, err := Build(col, 512, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := queries[i%len(queries)]
			if _, _, err := ix.ApproxQuery(lo, lo+8, 0.25); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, shards := range []int{4, 8} {
		b.Run("sharded="+strconv.Itoa(shards), func(b *testing.B) {
			ix, err := BuildSharded(col, 512, ShardOptions{Shards: shards, Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			ix.ResetDeviceStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := queries[i%len(queries)]
				if _, _, err := ix.Query(lo, lo+8); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ix.DeviceStats().BlockReads)/float64(b.N), "blockIO/op")
		})
	}
}

func BenchmarkAppendDirect(b *testing.B)   { benchAppend(b, false) }
func BenchmarkAppendBuffered(b *testing.B) { benchAppend(b, true) }

// BenchmarkRebuild measures the full build/rebuild pipeline of the
// semi-dynamic index: every iteration re-runs the global rebuild (skeleton +
// one encoded member chain per node per materialised level) on a fresh
// device. Run with -benchmem: allocs/op is the headline number for the fused
// streaming write path.
func BenchmarkRebuild(b *testing.B) {
	for _, variant := range []struct {
		name     string
		buffered bool
	}{{"direct", false}, {"buffered", true}} {
		b.Run(variant.name, func(b *testing.B) {
			col := benchColumn(1<<14, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := iomodel.NewDisk(iomodel.Config{BlockBits: 8192})
				ax, err := core.BuildAppendIndex(d, col, core.AppendOptions{Buffered: variant.buffered})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(ax.SizeBits())/float64(col.Len()), "bits/char")
				}
			}
		})
	}
}

func benchAppend(b *testing.B, buffered bool) {
	col := benchColumn(1024, 64)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 8192})
	ax, err := core.BuildAppendIndex(d, col, core.AppendOptions{Buffered: buffered})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var ios int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := ax.Append(uint32(rng.Intn(64)))
		if err != nil {
			b.Fatal(err)
		}
		ios += int64(st.Reads + st.Writes)
	}
	b.ReportMetric(float64(ios)/float64(b.N), "blockIO/op")
}

func BenchmarkDynamicChange(b *testing.B) {
	col := benchColumn(1<<14, 64)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 8192})
	dx, err := core.BuildDynamic(d, col, core.DynamicOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var ios int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := dx.Change(rng.Int63n(dx.Len()), uint32(rng.Intn(64)))
		if err != nil {
			b.Fatal(err)
		}
		ios += int64(st.Reads + st.Writes)
	}
	b.ReportMetric(float64(ios)/float64(b.N), "blockIO/op")
}

func BenchmarkApproxQuery(b *testing.B) {
	col := benchColumn(1<<15, 2048)
	d := iomodel.NewDisk(iomodel.Config{BlockBits: 8192})
	ax, err := core.BuildApprox(d, col, core.ApproxOptions{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var bits int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint32(rng.Intn(2040))
		res, st, err := ax.ApproxQuery(index.Range{Lo: lo, Hi: lo + 1}, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
		bits += st.BitsRead
	}
	b.ReportMetric(float64(bits)/float64(b.N), "bitsRead/op")
}

func BenchmarkA4LevelBuffering(b *testing.B) { benchExperiment(b, experiments.A4LevelBuffering) }

func BenchmarkA5CodeChoice(b *testing.B) { benchExperiment(b, experiments.A5CodeChoice) }

// --- Decode-path micro-benchmarks (the bitio → gamma → cbitmap stack). ---

// gammaBenchStream encodes count values drawn from a seeded distribution and
// returns the encoded stream plus the values for verification.
func gammaBenchStream(count int, seed int64) (*bitio.Writer, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	w := bitio.NewWriter(0)
	vals := make([]uint64, count)
	for i := range vals {
		// Mix of small gaps (the common case in dense bitmaps) and large ones.
		v := uint64(rng.Intn(8) + 1)
		if rng.Intn(16) == 0 {
			v = uint64(rng.Int63n(1<<30) + 1)
		}
		vals[i] = v
		gamma.Write(w, v)
	}
	return w, vals
}

func BenchmarkGammaDecode(b *testing.B) {
	const count = 1 << 16
	w, vals := gammaBenchStream(count, 11)
	b.SetBytes(int64(count))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(w.Bytes(), w.Len())
		var sum uint64
		for j := 0; j < count; j++ {
			v, err := gamma.Read(r)
			if err != nil {
				b.Fatal(err)
			}
			sum += v
		}
		if i == 0 {
			var want uint64
			for _, v := range vals {
				want += v
			}
			if sum != want {
				b.Fatalf("decode checksum %d want %d", sum, want)
			}
		}
	}
}

func BenchmarkBitioReadUnary(b *testing.B) {
	const count = 1 << 16
	rng := rand.New(rand.NewSource(12))
	w := bitio.NewWriter(0)
	for i := 0; i < count; i++ {
		w.WriteUnary(rng.Intn(40))
	}
	b.SetBytes(count)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(w.Bytes(), w.Len())
		for j := 0; j < count; j++ {
			if _, err := r.ReadUnary(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchBitmaps builds k bitmaps over a shared universe with density m ones
// each.
func benchBitmaps(k, m int, n int64, seed int64) []*cbitmap.Bitmap {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*cbitmap.Bitmap, k)
	for i := range out {
		pos := make([]int64, 0, m)
		for j := 0; j < m; j++ {
			pos = append(pos, rng.Int63n(n))
		}
		bm, err := cbitmap.FromUnsorted(n, pos)
		if err != nil {
			panic(err)
		}
		out[i] = bm
	}
	return out
}

func BenchmarkBitmapUnion(b *testing.B) {
	for _, k := range []int{2, 8} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			ms := benchBitmaps(k, 1<<15, 1<<22, 13)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cbitmap.Union(ms...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBitmapIntersect(b *testing.B) {
	ms := benchBitmaps(2, 1<<15, 1<<20, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cbitmap.Intersect(ms[0], ms[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContains probes random membership on a 1M-position bitmap — the
// acceptance target for the skip-sample fast path.
func BenchmarkContains(b *testing.B) {
	const m = 1 << 20
	n := int64(1) << 24
	rng := rand.New(rand.NewSource(15))
	pos := make([]int64, 0, m)
	for j := 0; j < m; j++ {
		pos = append(pos, rng.Int63n(n))
	}
	bm, err := cbitmap.FromUnsorted(n, pos)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Contains(rng.Int63n(n))
	}
	b.ReportMetric(float64(bm.SampleBits())/float64(bm.SizeBits())*100, "sample-overhead-pct")
}

func BenchmarkBitmapDecode(b *testing.B) {
	ms := benchBitmaps(1, 1<<17, 1<<24, 16)
	bm := ms[0]
	w := bitio.NewWriter(bm.SizeBits())
	bm.EncodeTo(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(w.Bytes(), w.Len())
		if _, err := cbitmap.Decode(r, bm.Card(), bm.Universe()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSim is the served-throughput benchmark: the serving layer's
// discrete-event simulator replays a deterministic open-loop arrival stream
// through admission control, micro-batching and the shared-scan planner.
// The reported metrics are virtual-clock and therefore deterministic:
// served/s and p99 from the simulated timeline, blockIO/batch from the I/O
// model. Wall ns/op measures the simulator+engine itself.
func BenchmarkServeSim(b *testing.B) {
	n := 1 << 15
	rng := rand.New(rand.NewSource(29))
	col := make([]uint32, n)
	for i := range col {
		col[i] = uint32(rng.Intn(512))
	}
	ix, err := BuildSharded(col, 512, ShardOptions{Shards: 4, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.ArrivalSpec{Sigma: 512, RangeLen: 16, Theta: 1.1}
	cfg := serve.Config{MaxQueue: 128, MaxBatch: 16, Workers: 2, AllowPartial: true}
	for _, bc := range []struct {
		name string
		arr  []workload.Arrival
	}{
		{"poisson-1x", workload.PoissonArrivals(2000, 20000, spec, 33)},
		{"poisson-4x", workload.PoissonArrivals(2000, 80000, spec, 33)},
		{"mmpp-burst", workload.MMPPArrivals(2000, 30000, 240000, 20*time.Millisecond, spec, 33)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var last serve.SimResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = serve.Simulate(serve.ShardBackend{Ix: ix.sx}, nil, bc.arr, serve.SimConfig{Config: cfg})
			}
			st := last.Stats
			b.ReportMetric(float64(st.Completed)/last.Makespan.Seconds(), "served/s")
			b.ReportMetric(100*float64(st.Shed)/float64(len(bc.arr)), "shed-pct")
			if st.Batches > 0 {
				b.ReportMetric(float64(st.Reads)/float64(st.Batches), "blockIO/batch")
				b.ReportMetric(float64(st.Admitted)/float64(st.Batches), "batch-size")
			}
			b.ReportMetric(float64(st.LatencyP99.Microseconds()), "p99-us")
		})
	}
}
